// The shared explicit-state exploration engine (PR 9): a level-synchronous
// parallel BFS with work-stealing, used by mc::check (PipelineModel),
// mc::explore (NADIR specs) and mc::check_repl_model.
//
// Design:
//  * Per-worker frontier arrays with steal-half: each worker owns this
//    level's chunk of nodes and claims them FIFO from the head; a worker
//    that runs dry steals the back half of a victim's remaining range.
//    Children always land in the expanding worker's next-level list.
//  * A barrier between levels. Level-synchrony is what makes the results
//    deterministic: every state is discovered at its true BFS distance, so
//    `distinct_states`, `transitions`, `quiescent_states` and `diameter`
//    are EXACT and thread-count-independent on runs that finish cleanly
//    (no cap, no violation). Capped or violating runs stop mid-level, so
//    only the verdict and the capped flag are stable there; counts are
//    lower-bounded by the cap.
//  * Seen-set = ShardedFingerprintSet: hash-compacted (fingerprint-only)
//    states behind striped locks, spillable to an mmap-backed disk store.
//  * First-violation-wins via a mutex-guarded claim; counterexample traces
//    come from per-worker parent-pointer pools (append-only, owner-written)
//    stitched into one action path at claim time, after the workers join.
//  * threads == 1 runs the exact serial BFS: one worker, FIFO claims, no
//    steals — byte-for-byte the pre-PR-9 checker's visit order, counters
//    and trace.
//
// The Model adapter concept:
//   using State  — copyable node payload;
//   using Action — transition id (stored in traces);
//   State initial() const;
//   std::pair<uint64_t,uint64_t> fingerprint(const State&) const;
//   std::string visit(const State&, bool& quiescent) const;
//       pop-time check; set `quiescent` for terminal states (counted);
//       non-empty return = state-attached violation (trace = path to s);
//   template <typename Sink> std::string expand(const State&, Sink&) const;
//       call sink.transition(action, std::move(next), violation) per
//       successor; stop when it returns false. A non-empty `violation`
//       claims a transition-attached violation (trace = path + action).
//       The returned string is a post-expansion state-attached violation
//       ("" normally; the NADIR explorer reports quiescence failures here).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/executor.h"
#include "common/fingerprint_set.h"

namespace zenith::mc {

struct ParallelBfsOptions {
  std::size_t max_states = 3'000'000;
  double time_limit_seconds = 120.0;
  bool record_traces = false;
  /// Worker threads. 0 = default_bench_threads(); 1 = the serial BFS.
  std::size_t threads = 1;
  /// Spill directory for the seen-set (see ShardedFingerprintSet).
  std::string disk_store_path;
  /// Seen-set shards (power of two). More shards = less insert contention.
  std::size_t seen_shards = 64;
};

template <typename ActionT>
struct ParallelBfsResult {
  bool ok = true;
  bool capped = false;
  std::string violation;
  std::size_t distinct_states = 0;
  std::size_t transitions = 0;
  std::size_t quiescent_states = 0;
  std::size_t diameter = 0;
  double seconds = 0.0;
  std::size_t threads_used = 1;
  /// Actions from the initial state to the violation (record_traces only).
  std::vector<ActionT> trace;
};

namespace detail {

/// Generation-counted barrier; the last arriver runs `on_complete` before
/// releasing the cohort (used to swap frontier levels).
class LevelBarrier {
 public:
  explicit LevelBarrier(std::size_t n) : n_(n) {}

  template <typename F>
  void arrive_and_wait(F&& on_complete) {
    std::unique_lock<std::mutex> lock(mu_);
    std::uint64_t generation = generation_;
    if (++arrived_ == n_) {
      on_complete();
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != generation; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t n_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
};

inline constexpr std::int64_t kNoTrace = -1;
inline constexpr std::size_t kClaimChunk = 32;

inline std::int64_t pack_trace_ref(std::size_t worker, std::size_t index) {
  return static_cast<std::int64_t>((worker << 48) | index);
}
inline std::size_t trace_ref_worker(std::int64_t ref) {
  return static_cast<std::size_t>(ref) >> 48;
}
inline std::size_t trace_ref_index(std::int64_t ref) {
  return static_cast<std::size_t>(ref) & ((std::size_t{1} << 48) - 1);
}

}  // namespace detail

template <typename Model>
ParallelBfsResult<typename Model::Action> parallel_bfs(
    const Model& model, const ParallelBfsOptions& options) {
  using State = typename Model::State;
  using Action = typename Model::Action;

  auto started = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         started)
        .count();
  };

  ParallelBfsResult<Action> result;
  const std::size_t threads =
      options.threads == 0 ? default_bench_threads() : options.threads;
  result.threads_used = threads;

  struct Node {
    State state;
    std::int64_t trace = detail::kNoTrace;
  };
  struct TraceNode {
    std::int64_t parent;
    Action action;
  };
  // One level's per-worker work range: [head, tail) of `nodes` is
  // unclaimed. The owner claims FIFO chunks at head; thieves split the
  // remainder from the tail. Entries are only read/moved by the claimant.
  struct WorkerLevel {
    std::mutex mu;
    std::vector<Node> nodes;
    std::size_t head = 0;
    std::size_t tail = 0;
  };
  struct Worker {
    WorkerLevel level;
    std::vector<Node> next;  // next level, owner-only during a level
    std::vector<TraceNode> trace_pool;
    std::size_t transitions = 0;
    std::size_t quiescent_states = 0;
    std::size_t diameter = 0;
  };

  ShardedFingerprintSet::Options seen_options;
  seen_options.shards = options.seen_shards;
  seen_options.disk_store_path = options.disk_store_path;
  ShardedFingerprintSet seen(seen_options);

  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers.push_back(std::make_unique<Worker>());
  }

  std::atomic<std::size_t> distinct{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> capped{false};

  // First-violation-wins claim. `final_action` is set for
  // transition-attached violations and appended after the parent walk.
  std::mutex claim_mu;
  bool claimed = false;
  std::string claimed_violation;
  std::int64_t claimed_leaf = detail::kNoTrace;
  bool claimed_has_action = false;
  Action claimed_action{};

  auto claim = [&](std::string violation, std::int64_t leaf,
                   const Action* action) {
    std::lock_guard<std::mutex> lock(claim_mu);
    if (claimed) return;
    claimed = true;
    claimed_violation = std::move(violation);
    claimed_leaf = leaf;
    if (action != nullptr) {
      claimed_has_action = true;
      claimed_action = *action;
    }
    stop.store(true, std::memory_order_release);
  };

  // Seed the root.
  State root = model.initial();
  seen.insert(model.fingerprint(root));
  distinct.store(1, std::memory_order_relaxed);
  workers[0]->level.nodes.push_back(Node{std::move(root), detail::kNoTrace});
  workers[0]->level.tail = 1;

  std::size_t level = 0;
  bool done = false;
  detail::LevelBarrier barrier(threads);

  // The per-transition sink handed to Model::expand.
  struct Sink {
    const Model* model;
    const ParallelBfsOptions* options;
    Worker* self;
    std::size_t worker_index;
    ShardedFingerprintSet* seen;
    std::atomic<std::size_t>* distinct;
    std::atomic<bool>* stop;
    decltype(claim)* do_claim;
    std::int64_t node_trace;

    bool transition(const Action& action, State&& next,
                    const std::string& violation = {}) {
      ++self->transitions;
      if (!violation.empty()) {
        (*do_claim)(violation, node_trace, &action);
        return false;
      }
      if (seen->insert(model->fingerprint(next))) {
        distinct->fetch_add(1, std::memory_order_relaxed);
        std::int64_t ref = detail::kNoTrace;
        if (options->record_traces) {
          self->trace_pool.push_back(TraceNode{node_trace, action});
          ref = detail::pack_trace_ref(worker_index,
                                       self->trace_pool.size() - 1);
        }
        self->next.push_back(Node{std::move(next), ref});
      }
      return true;
    }
  };

  auto worker_body = [&](std::size_t w) {
    Worker& self = *workers[w];
    for (;;) {
      // Drain this level: own chunks FIFO, then steal-half.
      for (;;) {
        WorkerLevel* source = nullptr;
        std::size_t begin = 0;
        std::size_t end = 0;
        {
          WorkerLevel& own = self.level;
          std::lock_guard<std::mutex> lock(own.mu);
          if (own.head < own.tail) {
            source = &own;
            begin = own.head;
            end = std::min(own.tail, own.head + detail::kClaimChunk);
            own.head = end;
          }
        }
        if (source == nullptr && threads > 1) {
          for (std::size_t v = 1; v < threads && source == nullptr; ++v) {
            WorkerLevel& victim = workers[(w + v) % threads]->level;
            std::lock_guard<std::mutex> lock(victim.mu);
            std::size_t remaining = victim.tail - victim.head;
            if (remaining == 0) continue;
            // Steal the back half, leaving the owner its FIFO head.
            std::size_t take = (remaining + 1) / 2;
            source = &victim;
            begin = victim.tail - take;
            end = victim.tail;
            victim.tail = begin;
          }
        }
        if (source == nullptr) break;  // level drained (for this worker)

        for (std::size_t i = begin; i < end; ++i) {
          if (stop.load(std::memory_order_acquire)) break;
          if (distinct.load(std::memory_order_relaxed) >=
                  options.max_states ||
              elapsed() > options.time_limit_seconds) {
            capped.store(true, std::memory_order_relaxed);
            stop.store(true, std::memory_order_release);
            break;
          }
          Node& node = source->nodes[i];
          self.diameter = std::max(self.diameter, level);

          bool quiescent = false;
          std::string violation = model.visit(node.state, quiescent);
          if (quiescent) ++self.quiescent_states;
          if (!violation.empty()) {
            claim(std::move(violation), node.trace, nullptr);
            break;
          }

          Sink sink{&model,    &options, &self, w,     &seen,
                    &distinct, &stop,    &claim, node.trace};
          violation = model.expand(node.state, sink);
          if (!violation.empty()) {
            claim(std::move(violation), node.trace, nullptr);
            break;
          }
        }
        if (stop.load(std::memory_order_acquire)) break;
      }

      barrier.arrive_and_wait([&] {
        ++level;
        std::size_t total = 0;
        for (auto& worker : workers) {
          WorkerLevel& lvl = worker->level;
          lvl.nodes = std::move(worker->next);
          worker->next.clear();
          lvl.head = 0;
          lvl.tail = lvl.nodes.size();
          total += lvl.tail;
        }
        done = total == 0 || stop.load(std::memory_order_acquire);
      });
      if (done) return;
    }
  };

  parallel_for(threads, threads, worker_body);

  result.distinct_states = distinct.load(std::memory_order_relaxed);
  for (const auto& worker : workers) {
    result.transitions += worker->transitions;
    result.quiescent_states += worker->quiescent_states;
    result.diameter = std::max(result.diameter, worker->diameter);
  }
  result.capped = capped.load(std::memory_order_relaxed);
  if (claimed) {
    result.ok = false;
    result.capped = false;  // a violation ends the run, not the budget
    result.violation = std::move(claimed_violation);
    if (options.record_traces) {
      std::vector<Action> reversed;
      if (claimed_has_action) reversed.push_back(claimed_action);
      for (std::int64_t at = claimed_leaf; at != detail::kNoTrace;) {
        const TraceNode& entry =
            workers[detail::trace_ref_worker(at)]
                ->trace_pool[detail::trace_ref_index(at)];
        reversed.push_back(entry.action);
        at = entry.parent;
      }
      result.trace.assign(reversed.rbegin(), reversed.rend());
    }
  }
  result.seconds = elapsed();
  return result;
}

}  // namespace zenith::mc
