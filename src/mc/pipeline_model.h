// The explicit-state specification model of the ZENITH-core pipeline.
//
// This is the reproduction's stand-in for the paper's TLA+ specification +
// TLC (§3.4-§3.7): a compact state machine covering Sequencer, Worker Pool,
// AbstractSW, Monitoring Server, Topo Event Handler and an AbstractApp,
// under switch failures (all three modes) and the §3.9 bug knobs. The
// checker (checker.h) enumerates its state space.
//
// The three scaling optimizations of §3.7 are model *configurations*, all
// sound in the same sense as the paper's:
//  * fine_grained (the "None" baseline): worker processing is split into
//    its constituent record/act steps and switches expose separate ingress
//    processing and egress (ACK) steps — the full interleaving space;
//  * symmetry: workers draw from one shared OP queue (the spec-level pool
//    of identical workers) and states are canonicalized by sorting worker
//    slots, collapsing permutations (§3.7 "Symmetry reduction");
//  * compositional: the switch is over-approximated by a single
//    deliver+apply+ACK transition (§3.7 "Compositional verification");
//  * por: commuting local steps are merged into atomic macro-steps and,
//    when an invisible (component-local) transition is enabled, only the
//    first one is expanded — an ample-set of size one (§3.7 "Partial order
//    reduction").
//
// Batched dispatch (the PR-4 pipeline, CoreConfig::batch_size) is modeled
// by ModelConfig::batch_size: at 1 the model is the classic per-OP pipeline
// (one nondeterministic Sequencer.ScheduleOP transition per ready OP); at
// >1 one atomic Sequencer.SchedulePass coalesces every currently-ready OP
// into per-switch batch messages of at most batch_size OPs — mirroring the
// implementation, where one sequencer service step runs the whole
// coalescing scan inside a single simulator event. A batch travels the
// worker -> switch -> ACK -> Monitoring Server path as ONE message: the
// switch applies its OPs in order and emits one batch-ACK, the Monitoring
// Server commits that ACK as a single transaction (one transition), and a
// worker crash mid-batch re-enqueues the WHOLE held batch exactly once
// (front re-insert), unless the pop_before_process bug is enabled — then
// the entire batch dies with the worker's locals.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/context.h"  // SpecBugs

namespace zenith::mc {

// Model capacities. Small by design: TLC-style checking explores instances.
inline constexpr int kMaxOps = 10;
inline constexpr int kMaxSwitches = 3;
inline constexpr int kMaxWorkers = 2;
inline constexpr int kQueueCap = 12;

/// One OP of the static op table.
struct ModelOp {
  std::uint8_t sw = 0;
  bool is_delete = false;
  std::uint8_t delete_target = 0xff;
  /// Predecessor op indices within the same DAG.
  std::vector<std::uint8_t> preds;
  /// Which DAG this op belongs to: 0 = A, 1 = B.
  std::uint8_t dag = 0;
};

struct ModelConfig {
  int num_switches = 2;
  int num_workers = 2;
  std::vector<ModelOp> ops;  // static op table (both DAGs)

  /// Per-switch dispatch batch size (CoreConfig::batch_size). 1 = the
  /// classic per-OP pipeline, byte-identical state space to the pre-batching
  /// model; >1 enables the batched Sequencer pass and batch messages.
  int batch_size = 1;

  /// Failure budget: how many switch failures the checker may inject.
  int max_switch_failures = 1;
  bool allow_recovery = true;
  /// CP-partial budget (Table 3): worker crashes the checker may inject.
  /// The Watchdog restart is implicit (the worker keeps serving); what a
  /// crash tests is the fate of the in-progress work item.
  int max_worker_crashes = 0;
  /// Complete (state-losing) vs partial failures.
  bool complete_failure = true;
  /// Which switch may fail (-1 = any).
  int failing_switch = -1;

  // -- adaptive consistency (PR 10) -------------------------------------------
  /// Mirror of ConsistencyConfig::eventual_installs: install-only ACKs land
  /// in an eventual log at the Monitoring Server (OPs stay SENT) and a
  /// separate EventualPump.Apply transition publishes them oldest-first to
  /// the NIB view. Strong-class ACKs (deletes, CLEAR_TCAM) drain the log
  /// first — the barrier whose absence is invariant E2.
  bool eventual_installs = false;
  /// E1 bound: the Monitoring Server drains oldest entries at commit time
  /// so the pending log never exceeds this.
  int staleness_bound = 2;
  /// Deliberate defect: strong-class ACKs commit WITHOUT draining the
  /// eventual log. Makes E2 falsifiable — the checker must produce a
  /// counterexample with this knob on and a clean pass with it off.
  bool bug_skip_barrier = false;

  // -- optimizations (§3.7) ---------------------------------------------------
  bool opt_symmetry = false;
  bool opt_compositional = false;
  bool opt_por = false;

  // -- §3.9 bug knobs (for counterexample generation) --------------------------
  SpecBugs bugs;

  /// Builds the Table 4 instance: "a single switch failure that causes a
  /// transition from a DAG of size 2 to a DAG of size at most 3 (involving
  /// up to 5 OPs)".
  static ModelConfig table4_instance();
  /// A larger instance for the Table 4 measurement run: three switches, two
  /// failure injections anywhere, a 3-OP DAG A replaced by a 4-OP DAG B
  /// plus deletions (9 OPs total). This is what makes the unoptimized
  /// exploration blow up, mirroring the paper's instance where "None"
  /// exceeds memory.
  static ModelConfig table4_measurement_instance();
  /// A minimal 2-op chain on one switch, no failures (smoke checking).
  static ModelConfig tiny_instance();
  /// The §G instance: transient failure + recovery + new OP on the
  /// recovered switch.
  static ModelConfig transient_recovery_instance();
};

/// Message encoding on queues (16-bit):
///   0..kMaxOps-1                 one OP (the batch_size=1 wire format, and
///                                singleton batches at batch_size>1 — the
///                                implementation sends those as the classic
///                                per-OP request too);
///   kBatchFlag | sw<<10 | mask   a per-switch batch: the OPs whose indices
///                                are set in the low-10-bit mask, applied in
///                                ascending index order (the coalescing scan
///                                order — DAG preds are never co-batched
///                                with their successors, readiness requires
///                                the pred already DONE);
///   kClearBase + sw              CLEAR_TCAM for sw;
///   kNoOp                        idle marker.
using Msg = std::uint16_t;
inline constexpr Msg kBatchFlag = 0x8000;
inline constexpr Msg kClearBase = 0xe000;
inline constexpr Msg kNoOp = 0xffff;

/// OP lifecycle in the model's NIB.
enum class MOpStatus : std::uint8_t {
  kNone,
  kScheduled,
  kSent,
  kDone,
  kFailedSw,
};

enum class MHealth : std::uint8_t { kUp, kDown, kRecovering };

/// Packed model state. Fixed layout so hashing/canonicalization is cheap.
struct State {
  std::uint8_t current_dag = 0;
  std::array<std::uint8_t, kMaxOps> op_status{};        // MOpStatus
  std::array<Msg, kQueueCap> op_queue{};                // shared pool queue
  std::uint8_t op_queue_len = 0;
  // Per-worker: the message being processed (kNoOp = idle) and its phase
  // (0 = just taken, 1 = recorded/ready-to-act) — fine-grained mode only.
  std::array<Msg, kMaxWorkers> worker_msg{};
  std::array<std::uint8_t, kMaxWorkers> worker_phase{};
  std::array<std::uint8_t, kMaxSwitches> sw_up{};        // bool
  std::array<std::uint8_t, kMaxSwitches> nib_health{};   // MHealth
  std::array<std::uint16_t, kMaxSwitches> sw_table{};    // op bitmask
  std::array<std::array<Msg, kQueueCap>, kMaxSwitches> sw_inq{};
  std::array<std::uint8_t, kMaxSwitches> sw_inq_len{};
  std::array<std::array<Msg, kQueueCap>, kMaxSwitches> sw_outq{};
  std::array<std::uint8_t, kMaxSwitches> sw_outq_len{};
  std::array<Msg, kQueueCap> ack_queue{};                // at monitoring
  std::uint8_t ack_queue_len = 0;
  std::array<std::uint8_t, kQueueCap> topo_queue{};      // health events
  std::uint8_t topo_queue_len = 0;
  std::array<std::uint8_t, kQueueCap> cleanup_queue{};   // clear ACKs
  std::uint8_t cleanup_queue_len = 0;
  // Eventual log (PR 10): acknowledged install messages not yet published
  // to the NIB view. Always empty unless ModelConfig::eventual_installs.
  std::array<Msg, kQueueCap> eventual_log{};
  std::uint8_t eventual_log_len = 0;
  std::uint16_t nib_view[kMaxSwitches] = {};             // op bitmask
  std::uint16_t installed_once = 0;                      // op bitmask
  std::uint8_t failures_used = 0;
  std::uint8_t worker_crashes_used = 0;
  std::uint8_t app_switched = 0;        // app replaced DAG A with B
  std::uint8_t pending_reset = 0;       // bitmask: deferred resets (bug)

  bool operator==(const State&) const = default;

  /// Canonical 128-bit fingerprint (after symmetry canonicalization when
  /// enabled).
  std::pair<std::uint64_t, std::uint64_t> fingerprint(
      bool symmetry) const;
};

/// A transition of the model: identifier + human-readable label.
struct Action {
  enum class Kind : std::uint8_t {
    kSeqSchedule,
    kSeqBatchPass,
    kWorkerTake,
    kWorkerRecord,
    kWorkerAct,
    kSwitchProcess,
    kSwitchEmitAck,
    kMonitoring,
    kEventualApply,
    kTopoEvent,
    kCleanupAck,
    kDeferredReset,
    kSwitchFail,
    kSwitchRecover,
    kWorkerCrash,
    kAppSwitchDag,
  };
  Kind kind;
  std::uint8_t subject = 0;  // op index / worker / switch, by kind
  std::string label() const;
  /// True when this is a failure-injection transition (unfair process: the
  /// checker may always choose not to run it; quiescence ignores it).
  bool is_failure() const {
    return kind == Kind::kSwitchFail || kind == Kind::kSwitchRecover ||
           kind == Kind::kWorkerCrash;
  }
};

/// The model: enumerates enabled actions and applies them.
class PipelineModel {
 public:
  explicit PipelineModel(ModelConfig config);

  const ModelConfig& config() const { return config_; }

  State initial_state() const;

  /// All enabled actions in `s` (after POR filtering when enabled).
  std::vector<Action> enabled_actions(const State& s) const;

  /// Applies `a` to `s`; returns a violation message ("" if none). DAG-order
  /// safety (condition ①) is checked at install time.
  std::string apply(State& s, const Action& a) const;

  /// True when no non-failure action is enabled.
  bool quiescent(const State& s) const;

  /// Consistency at quiescence (conditions ② and ③ on the instance):
  /// returns "" or a violation description.
  std::string check_quiescent_consistency(const State& s) const;

 private:
  std::vector<Action> raw_enabled(const State& s) const;
  bool action_is_local(const Action& a) const;
  int shard_unused(int sw) const { return sw % config_.num_workers; }
  bool op_in_current_dag(const State& s, int op) const;
  bool preds_done(const State& s, int op) const;
  bool op_schedulable(const State& s, int op) const;
  int msg_switch(Msg msg) const;
  std::string deliver_to_switch(State& s, int sw, Msg msg) const;
  std::string apply_on_switch(State& s, int sw, Msg msg) const;
  void enqueue_ack(State& s, int sw, Msg msg) const;
  void process_ack(State& s, Msg msg) const;
  bool msg_is_strong(Msg msg) const;
  void apply_eventual_entry(State& s, Msg msg) const;
  void reset_switch_ops(State& s, int sw) const;
  void mark_batch_status(State& s, Msg msg, MOpStatus status) const;

  ModelConfig config_;
};

}  // namespace zenith::mc
