#include "mc/lockstep.h"

#include <algorithm>
#include <array>
#include <sstream>

#include "common/logging.h"
#include "harness/workload.h"
#include "obs/obs.h"
#include "to/orchestrator.h"

namespace zenith::mc {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
/// Workload derivation salt; any fixed constant works, it only decouples
/// the workload RNG stream from the schedule RNG stream.
constexpr std::uint64_t kWorkloadSalt = 0x10C57E9010C57E90ull;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t fnv1a(std::uint64_t hash, const std::string& text) {
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// True when every transitional OP has drained: nothing SCHEDULED or
/// IN_FLIGHT, and nothing SENT to a switch that is healthy and alive (such
/// an OP's ACK is still in the pipe; a model quiescence point cannot be
/// declared while it travels). CLEAR_TCAM/DUMP_TABLE replies route through
/// the cleanup paths and are excluded, matching check_quiescent().
bool pipeline_drained(Experiment& exp) {
  Nib& nib = exp.nib();
  // Replicated commit path: an ACK sitting uncommitted in a shard log is
  // still "in the pipe"; a quiescence point cannot be declared (nor R4
  // evaluated) until the reachable replica sets converge.
  if (auto* repl = exp.controller().repl();
      repl != nullptr && !repl->settled()) {
    return false;
  }
  if (!nib.ops_with_status(OpStatus::kScheduled).empty()) return false;
  if (!nib.ops_with_status(OpStatus::kInFlight).empty()) return false;
  for (OpId id : nib.ops_with_status(OpStatus::kSent)) {
    const Op& op = nib.op(id);
    if (op.type == OpType::kClearTcam || op.type == OpType::kDumpTable) {
      continue;
    }
    if (nib.switch_up(op.sw) && exp.fabric().alive(op.sw)) return false;
  }
  return true;
}

/// Downscaled PipelineModel instance matching the scenario's semantics
/// knobs: same batch_size, same §3.9 bug switches, a fault budget shaped
/// by the schedule's fault classes.
ModelConfig model_instance_for(const chaos::CampaignConfig& campaign,
                               const chaos::ChaosSchedule& schedule) {
  bool switch_faults = false;
  bool crashes = false;
  for (const chaos::ChaosEvent& event : schedule.events) {
    switch (event.kind) {
      case chaos::FaultKind::kSwitchFail:
        switch_faults = true;
        break;
      case chaos::FaultKind::kComponentCrash:
      case chaos::FaultKind::kOfcCrash:
      case chaos::FaultKind::kDeCrash:
        crashes = true;
        break;
      default:
        break;
    }
  }
  ModelConfig model = switch_faults
                          ? ModelConfig::transient_recovery_instance()
                          : ModelConfig::table4_instance();
  model.batch_size = static_cast<int>(campaign.core.batch_size);
  model.bugs = campaign.core.bugs;
  if (crashes) model.max_worker_crashes = 1;
  // POR's macro-steps hide the crash interleavings the CP-partial budget is
  // meant to expose; symmetry + compositional keep the instance small.
  model.opt_symmetry = true;
  model.opt_compositional = true;
  model.opt_por = false;
  return model;
}

}  // namespace

std::uint64_t LockstepReport::report_digest() const {
  std::uint64_t hash = kFnvOffset;
  hash = fnv1a(hash, diverged ? "diverged" : "conformant");
  for (const std::string& d : divergences) hash = fnv1a(hash, d);
  for (const PhaseRecord& phase : phases) {
    hash = fnv1a(hash, phase.index);
    hash = fnv1a(hash, phase.digest);
    hash = fnv1a(hash, phase.events_injected);
  }
  return hash;
}

std::string LockstepReport::summary() const {
  std::ostringstream out;
  if (diverged) {
    out << "DIVERGED phase=" << divergent_phase;
    if (!divergences.empty()) out << " :: " << divergences.front();
  } else {
    out << "CONFORMANT phases=" << phases.size();
  }
  if (model_result.distinct_states > 0) {
    out << " model=" << (model_result.ok ? "ok" : "violation")
        << "(" << model_result.distinct_states << " states)";
  }
  return out.str();
}

LockstepChecker::LockstepChecker(LockstepConfig config)
    : config_(std::move(config)) {}

LockstepReport LockstepChecker::run() {
  Topology topo = chaos::make_topology(config_.campaign);
  schedule_ = chaos::generate_schedule(topo, config_.campaign.core,
                                       config_.campaign.schedule,
                                       config_.campaign.seed);
  return run(schedule_);
}

LockstepReport LockstepChecker::run(const chaos::ChaosSchedule& schedule) {
  const chaos::CampaignConfig& campaign = config_.campaign;
  LockstepReport report;

  if (config_.check_model) {
    CheckerOptions options;
    options.max_states = 400'000;
    options.time_limit_seconds = 20.0;
    report.model_result =
        check(PipelineModel(model_instance_for(campaign, schedule)), options);
  }

  obs::Observability o(/*recorder_capacity=*/512);

  ExperimentConfig experiment_config;
  experiment_config.seed = campaign.seed;
  experiment_config.kind = campaign.controller;
  experiment_config.core = campaign.core;
  Experiment exp(chaos::make_topology(campaign), experiment_config);
  exp.attach_observability(&o);
  exp.start();
  Workload workload(&exp, campaign.seed ^ kWorkloadSalt);

  // NIB event projection: per-type counts (plus expanded batch-commit
  // cardinality) folded into each phase digest. Two executions that reach
  // identical abstract states through different event histories are still
  // distinguished — the projection is the "NIB event log" leg of the
  // abstraction.
  std::array<std::uint64_t, 5> event_counts{};
  std::uint64_t batch_committed_ops = 0;
  NadirFifo<NibEvent> projection;
  projection.set_wake_callback([&] {
    while (!projection.empty()) {
      NibEvent event = projection.pop();
      ++event_counts[static_cast<std::size_t>(event.type)];
      batch_committed_ops += event.batch.size();
    }
  });
  exp.nib().subscribe(&projection);

  std::vector<DagId> submitted;
  FaultHistory history;
  bool divergence_found = false;

  auto record_divergence = [&](std::size_t phase, std::string message) {
    if (!divergence_found) {
      report.diverged = true;
      report.divergent_phase = phase;
      o.event("lockstep", "divergence", message);
      report.flight_recorder_dump = o.recorder().dump();
      divergence_found = true;
    }
    report.divergences.push_back(std::move(message));
  };

  // Baseline: the initial DAG must converge before any fault is injected —
  // a failure here diverges at phase 0 by definition.
  Dag initial = workload.initial_dag(campaign.initial_flows);
  DagId last_dag = initial.id();
  submitted.push_back(last_dag);
  exp.order_checker().register_dag(initial);
  if (!exp.install_and_wait(std::move(initial), config_.settle_timeout)
           .has_value()) {
    record_divergence(0, "initial DAG failed to converge fault-free");
    return report;
  }

  const std::size_t phase_count = std::max<std::size_t>(1, config_.phases);
  const SimTime window = campaign.schedule.horizon / phase_count;
  const SimTime t0 = exp.sim().now();  // schedule time zero

  auto touches_dead = [&](DagId id) {
    if (!exp.nib().has_dag(id)) return false;
    for (SwitchId sw : exp.nib().dag(id).touched_switches()) {
      if (!exp.fabric().alive(sw)) return true;
    }
    return false;
  };
  auto quiesced = [&] {
    if (!pipeline_drained(exp)) return false;
    if (touches_dead(last_dag)) {
      return exp.checker().check(std::nullopt).view_consistent;
    }
    return exp.checker().converged(last_dag);
  };

  for (std::size_t p = 0; p < phase_count && !divergence_found; ++p) {
    // One workload update races this phase's faults.
    if (auto update = workload.next_update_dag()) {
      last_dag = update->id();
      submitted.push_back(last_dag);
      exp.order_checker().register_dag(*update);
      exp.controller().submit_dag(std::move(*update));
    }

    // This phase's slice of the schedule, re-based to the window start.
    const SimTime phase_start = static_cast<SimTime>(p) * window;
    chaos::ChaosSchedule slice;
    slice.seed = schedule.seed;
    for (const chaos::ChaosEvent& event : schedule.events) {
      std::size_t phase =
          std::min(phase_count - 1,
                   static_cast<std::size_t>(window == 0 ? 0 : event.at / window));
      if (phase != p) continue;
      chaos::ChaosEvent rebased = event;
      rebased.at = event.at > phase_start ? event.at - phase_start : 0;
      slice.events.push_back(std::move(rebased));
    }
    for (const chaos::ChaosEvent& event : slice.events) {
      switch (event.kind) {
        case chaos::FaultKind::kSwitchFail:
          history.ever_down.insert(event.sw.value());
          break;
        case chaos::FaultKind::kComponentCrash:
        case chaos::FaultKind::kOfcCrash:
        case chaos::FaultKind::kDeCrash:
        case chaos::FaultKind::kReplyBurstLoss:
          history.ofc_disrupted = true;
          break;
        default:
          break;
      }
    }

    std::ostringstream name;
    name << "lockstep/" << chaos::to_string(campaign.topology) << "/seed"
         << campaign.seed << "/phase" << p;
    to::Trace trace = chaos::schedule_to_trace(slice, name.str(), "");
    to::TraceOrchestrator orchestrator(&exp, /*gate_components=*/false);
    orchestrator.replay(trace);

    // Let the window play out, then demand quiescence. The model's
    // executions always drain; failing to is itself a divergence.
    const SimTime phase_end = t0 + static_cast<SimTime>(p + 1) * window;
    if (exp.sim().now() < phase_end) exp.run_for(phase_end - exp.sim().now());
    if (!exp.run_until(quiesced, config_.settle_timeout).has_value()) {
      std::ostringstream msg;
      msg << "phase " << p << " failed to quiesce within "
          << to_seconds(config_.settle_timeout) << "s";
      record_divergence(p, msg.str());
      for (std::string& detail : check_quiescent(exp, last_dag, history)) {
        report.divergences.push_back("phase " + std::to_string(p) + ": " +
                                     std::move(detail));
      }
      break;
    }

    // Quiescence point: the model's invariants must hold...
    for (std::string& detail : check_quiescent(exp, last_dag, history)) {
      record_divergence(p,
                        "phase " + std::to_string(p) + ": " + std::move(detail));
    }

    // ...and the abstraction digest is recorded (golden corpus pins it).
    PhaseRecord phase_record;
    phase_record.index = p;
    phase_record.at = exp.sim().now();
    phase_record.events_injected = slice.events.size();
    std::uint64_t digest = abstract_state(exp, submitted).digest();
    digest = fnv1a(digest, p);
    for (std::uint64_t count : event_counts) digest = fnv1a(digest, count);
    digest = fnv1a(digest, batch_committed_ops);
    phase_record.digest = digest;
    report.phases.push_back(phase_record);
  }

  ZLOG_DEBUG("lockstep: %s", report.summary().c_str());
  return report;
}

LockstepChecker::DivergenceShrink LockstepChecker::shrink(
    const chaos::ChaosSchedule& failing, std::size_t max_oracle_runs) {
  DivergenceShrink result;

  LockstepReport last_failing;
  LockstepReport first_probe;
  bool first = true;
  auto violates = [&](const chaos::ChaosSchedule& candidate) -> bool {
    LockstepReport probe = run(candidate);
    bool failed = probe.diverged;
    if (first) {
      first_probe = probe;
      first = false;
    }
    if (failed) last_failing = std::move(probe);
    return failed;
  };

  chaos::DdminResult ddmin =
      chaos::ddmin_schedule(failing, violates, max_oracle_runs);
  result.oracle_runs = ddmin.oracle_runs;
  result.one_minimal = ddmin.one_minimal;
  result.minimal = std::move(ddmin.minimal);
  result.minimal_report =
      ddmin.reproduced ? std::move(last_failing) : std::move(first_probe);

  std::ostringstream name;
  name << "lockstep-shrunk/" << chaos::to_string(config_.campaign.topology)
       << "/seed" << config_.campaign.seed;
  std::string violation = result.minimal_report.divergences.empty()
                              ? ""
                              : result.minimal_report.divergences.front();
  result.trace = chaos::schedule_to_trace(
      result.minimal, ddmin.reproduced ? name.str() : "lockstep-not-shrunk",
      std::move(violation));
  return result;
}

void enable_campaign_lockstep_oracle() {
  chaos::set_campaign_lockstep_oracle(
      [](Experiment& exp, DagId last_dag) -> std::vector<std::string> {
        // The campaign declares quiescence at convergence of the last DAG;
        // transitional statuses of superseded work may still be draining.
        // Settle them (bounded) before evaluating quiescent invariants.
        exp.run_until([&exp] { return pipeline_drained(exp); }, seconds(5));
        FaultHistory history;
        history.assume_any = true;  // the campaign's fault mix is unknown here
        return check_quiescent(exp, last_dag, history);
      });
}

}  // namespace zenith::mc
