#include "mc/pipeline_model.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <sstream>

#include "common/hash.h"

namespace zenith::mc {

namespace {
template <typename T>
bool queue_push(T* queue, std::uint8_t& len, T msg) {
  if (len >= kQueueCap) return false;
  queue[len++] = msg;
  return true;
}

template <typename T>
T queue_pop(T* queue, std::uint8_t& len) {
  assert(len > 0);
  T head = queue[0];
  for (int i = 1; i < len; ++i) queue[i - 1] = queue[i];
  --len;
  return head;
}

bool is_clear_msg(Msg msg) { return msg >= kClearBase && msg != kNoOp; }
int clear_switch_of(Msg msg) { return msg - kClearBase; }
bool is_batch_msg(Msg msg) {
  return (msg & kBatchFlag) != 0 && msg < kClearBase;
}
int batch_switch_of(Msg msg) { return (msg >> 10) & 0x1f; }
std::uint16_t batch_mask_of(Msg msg) { return msg & 0x03ff; }
Msg make_batch_msg(int sw, std::uint16_t mask) {
  return static_cast<Msg>(kBatchFlag | (sw << 10) | mask);
}
}  // namespace

ModelConfig ModelConfig::table4_instance() {
  // DAG A: op0 (sw0) -> op1 (sw1). Switch 0 fails; the app installs DAG B:
  // op2 (sw1) -> op3 (sw1) plus a deletion of op1 — 5 OPs total.
  ModelConfig config;
  config.num_switches = 2;
  config.num_workers = 2;
  config.max_switch_failures = 1;
  config.allow_recovery = true;
  config.complete_failure = true;
  config.failing_switch = 0;
  ModelOp op0{.sw = 0, .preds = {}, .dag = 0};
  ModelOp op1{.sw = 1, .preds = {0}, .dag = 0};
  ModelOp op2{.sw = 1, .preds = {}, .dag = 1};
  ModelOp op3{.sw = 1, .preds = {2}, .dag = 1};
  ModelOp del4{.sw = 1,
               .is_delete = true,
               .delete_target = 1,
               .preds = {2, 3},
               .dag = 1};
  config.ops = {op0, op1, op2, op3, del4};
  return config;
}

ModelConfig ModelConfig::table4_measurement_instance() {
  ModelConfig config;
  config.num_switches = 3;
  config.num_workers = 2;
  config.max_switch_failures = 2;
  config.allow_recovery = true;
  config.complete_failure = true;
  config.failing_switch = -1;  // any switch
  // DAG A: op0 (sw0) -> op1 (sw1) -> op2 (sw2).
  ModelOp op0{.sw = 0, .preds = {}, .dag = 0};
  ModelOp op1{.sw = 1, .preds = {0}, .dag = 0};
  ModelOp op2{.sw = 2, .preds = {1}, .dag = 0};
  // DAG B: two parallel chains on sw1/sw2 plus deletions of A's survivors.
  ModelOp op3{.sw = 1, .preds = {}, .dag = 1};
  ModelOp op4{.sw = 2, .preds = {3}, .dag = 1};
  ModelOp op5{.sw = 2, .preds = {}, .dag = 1};
  ModelOp op6{.sw = 1, .preds = {5}, .dag = 1};
  ModelOp del7{.sw = 1,
               .is_delete = true,
               .delete_target = 1,
               .preds = {4, 6},
               .dag = 1};
  ModelOp del8{.sw = 2,
               .is_delete = true,
               .delete_target = 2,
               .preds = {4, 6},
               .dag = 1};
  config.ops = {op0, op1, op2, op3, op4, op5, op6, del7, del8};
  return config;
}

ModelConfig ModelConfig::tiny_instance() {
  ModelConfig config;
  config.num_switches = 2;
  config.num_workers = 1;
  config.max_switch_failures = 0;
  ModelOp op0{.sw = 0, .preds = {}, .dag = 0};
  ModelOp op1{.sw = 1, .preds = {0}, .dag = 0};
  config.ops = {op0, op1};
  return config;
}

ModelConfig ModelConfig::transient_recovery_instance() {
  // §G: sw0 fails transiently; after the failure/recovery cycle the app's
  // replacement DAG installs a fresh OP on the recovered switch.
  ModelConfig config;
  config.num_switches = 2;
  config.num_workers = 2;
  config.max_switch_failures = 1;
  config.allow_recovery = true;
  config.complete_failure = true;
  config.failing_switch = 0;
  ModelOp op0{.sw = 0, .preds = {}, .dag = 0};
  ModelOp op1{.sw = 1, .preds = {0}, .dag = 0};
  ModelOp op2{.sw = 0, .preds = {}, .dag = 1};  // new rule on recovered sw
  ModelOp del3{.sw = 1,
               .is_delete = true,
               .delete_target = 1,
               .preds = {2},
               .dag = 1};
  config.ops = {op0, op1, op2, del3};
  return config;
}

std::pair<std::uint64_t, std::uint64_t> State::fingerprint(
    bool symmetry) const {
  // Workers are interchangeable: canonicalize by sorting their
  // (msg, phase) tuples. (§3.7 symmetry reduction.) Only the worker slots
  // differ between the raw and canonical forms, so the state itself is
  // never copied — the sorted slots are serialized in place of the raw
  // ones below.
  std::array<std::pair<Msg, std::uint8_t>, kMaxWorkers> slots;
  for (int w = 0; w < kMaxWorkers; ++w) {
    slots[w] = {worker_msg[w], worker_phase[w]};
  }
  if (symmetry) std::sort(slots.begin(), slots.end());

  // Field-by-field serialization: hashing the raw struct would include
  // indeterminate padding bytes and split identical states. The buffer is
  // stack-allocated — this runs once per generated state, so a heap
  // allocation here dominates the checker's flat profile (PR 9).
  std::array<std::uint8_t, 320> bytes;
  std::size_t len = 0;
  auto put8 = [&](std::uint8_t v) { bytes[len++] = v; };
  auto put16 = [&](std::uint16_t v) {
    bytes[len++] = static_cast<std::uint8_t>(v & 0xff);
    bytes[len++] = static_cast<std::uint8_t>(v >> 8);
  };
  put8(current_dag);
  for (auto v : op_status) put8(v);
  put8(op_queue_len);
  for (int i = 0; i < op_queue_len; ++i) put16(op_queue[i]);
  for (int w = 0; w < kMaxWorkers; ++w) {
    put16(slots[w].first);
    put8(slots[w].second);
  }
  for (int sw = 0; sw < kMaxSwitches; ++sw) {
    put8(sw_up[sw]);
    put8(nib_health[sw]);
    put16(sw_table[sw]);
    put16(nib_view[sw]);
    put8(sw_inq_len[sw]);
    for (int i = 0; i < sw_inq_len[sw]; ++i) put16(sw_inq[sw][i]);
    put8(sw_outq_len[sw]);
    for (int i = 0; i < sw_outq_len[sw]; ++i) {
      put16(sw_outq[sw][i]);
    }
  }
  put8(ack_queue_len);
  for (int i = 0; i < ack_queue_len; ++i) put16(ack_queue[i]);
  put8(topo_queue_len);
  for (int i = 0; i < topo_queue_len; ++i) put8(topo_queue[i]);
  put8(cleanup_queue_len);
  for (int i = 0; i < cleanup_queue_len; ++i) {
    put8(cleanup_queue[i]);
  }
  put16(installed_once);
  put8(failures_used);
  put8(worker_crashes_used);
  put8(app_switched);
  put8(pending_reset);
  // Folded only when non-empty: all-strong configurations never populate
  // the eventual log, so their fingerprints — and the MC golden cells that
  // record them — stay byte-identical to the pre-PR-10 serialization.
  if (eventual_log_len > 0) {
    put8(eventual_log_len);
    for (int i = 0; i < eventual_log_len; ++i) put16(eventual_log[i]);
  }
  std::span<const std::uint8_t> span(bytes.data(), len);
  return {fnv1a(span, 0xcbf29ce484222325ull),
          fnv1a(span, 0x9e3779b97f4a7c15ull)};
}

std::string Action::label() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kSeqSchedule: out << "Sequencer.ScheduleOP(op" << int(subject) << ")"; break;
    case Kind::kSeqBatchPass: out << "Sequencer.SchedulePass"; break;
    case Kind::kWorkerTake: out << "WorkerPool.Take(w" << int(subject) << ")"; break;
    case Kind::kWorkerRecord: out << "WorkerPool.RecordNIB(w" << int(subject) << ")"; break;
    case Kind::kWorkerAct: out << "WorkerPool.ForwardOP(w" << int(subject) << ")"; break;
    case Kind::kSwitchProcess: out << "AbstractSW.PerformOP(sw" << int(subject) << ")"; break;
    case Kind::kSwitchEmitAck: out << "AbstractSW.AckOP(sw" << int(subject) << ")"; break;
    case Kind::kMonitoring: out << "MonitoringServer.ProcessACK"; break;
    case Kind::kEventualApply: out << "EventualPump.Apply"; break;
    case Kind::kTopoEvent: out << "TopoEventHandler.HealthEvent"; break;
    case Kind::kCleanupAck: out << "TopoEventHandler.CleanupACK"; break;
    case Kind::kDeferredReset: out << "TopoEventHandler.DeferredReset(sw" << int(subject) << ")"; break;
    case Kind::kSwitchFail: out << "SwitchFailure(sw" << int(subject) << ")"; break;
    case Kind::kSwitchRecover: out << "SwitchRecovery(sw" << int(subject) << ")"; break;
    case Kind::kWorkerCrash: out << "WorkerCrash(w" << int(subject) << ")"; break;
    case Kind::kAppSwitchDag: out << "AbstractApp.ReplaceDAG"; break;
  }
  return out.str();
}

PipelineModel::PipelineModel(ModelConfig config) : config_(std::move(config)) {
  assert(config_.num_switches <= kMaxSwitches);
  assert(config_.num_workers <= kMaxWorkers);
  assert(config_.ops.size() <= kMaxOps);
  assert(config_.batch_size >= 1);
}

State PipelineModel::initial_state() const {
  State s;
  s.worker_msg.fill(kNoOp);
  for (int i = 0; i < config_.num_switches; ++i) {
    s.sw_up[i] = 1;
    s.nib_health[i] = static_cast<std::uint8_t>(MHealth::kUp);
  }
  return s;
}

bool PipelineModel::op_in_current_dag(const State& s, int op) const {
  return config_.ops[op].dag == s.current_dag;
}

bool PipelineModel::preds_done(const State& s, int op) const {
  for (std::uint8_t p : config_.ops[op].preds) {
    if (static_cast<MOpStatus>(s.op_status[p]) != MOpStatus::kDone) {
      return false;
    }
  }
  return true;
}

bool PipelineModel::op_schedulable(const State& s, int op) const {
  // P2's predicate, verbatim: in the current DAG, not yet tracked, all
  // predecessors DONE, and the target switch healthy in the NIB.
  if (!op_in_current_dag(s, op)) return false;
  if (static_cast<MOpStatus>(s.op_status[op]) != MOpStatus::kNone) {
    return false;
  }
  if (!preds_done(s, op)) return false;
  return static_cast<MHealth>(s.nib_health[config_.ops[op].sw]) ==
         MHealth::kUp;
}

int PipelineModel::msg_switch(Msg msg) const {
  if (is_clear_msg(msg)) return clear_switch_of(msg);
  if (is_batch_msg(msg)) return batch_switch_of(msg);
  return config_.ops[msg].sw;
}

void PipelineModel::mark_batch_status(State& s, Msg msg,
                                      MOpStatus status) const {
  std::uint16_t mask = batch_mask_of(msg);
  for (int op = 0; op < static_cast<int>(config_.ops.size()); ++op) {
    if (mask & (1u << op)) {
      s.op_status[op] = static_cast<std::uint8_t>(status);
    }
  }
}

std::vector<Action> PipelineModel::raw_enabled(const State& s) const {
  std::vector<Action> out;
  using K = Action::Kind;

  if (config_.batch_size <= 1) {
    // Sequencer, classic pipeline: one transition per schedulable OP
    // (P2's predicate, verbatim).
    for (int op = 0; op < static_cast<int>(config_.ops.size()); ++op) {
      if (!op_schedulable(s, op)) continue;
      if (s.op_queue_len >= kQueueCap) continue;
      out.push_back({K::kSeqSchedule, static_cast<std::uint8_t>(op)});
    }
  } else {
    // Batched pipeline: one service step of the sequencer runs the whole
    // coalescing scan atomically (the implementation does the same inside
    // a single simulator event).
    bool any = false;
    for (int op = 0; op < static_cast<int>(config_.ops.size()); ++op) {
      if (op_schedulable(s, op)) {
        any = true;
        break;
      }
    }
    if (any && s.op_queue_len < kQueueCap) {
      out.push_back({K::kSeqBatchPass, 0});
    }
  }

  // Worker pool: an idle worker may take the queue head unless another
  // worker already holds a message for the same switch (per-switch
  // serialization, P4).
  if (s.op_queue_len > 0) {
    int head_sw = msg_switch(s.op_queue[0]);
    bool switch_held = false;
    for (int w = 0; w < config_.num_workers; ++w) {
      if (s.worker_msg[w] == kNoOp) continue;
      if (msg_switch(s.worker_msg[w]) == head_sw) switch_held = true;
    }
    if (!switch_held) {
      for (int w = 0; w < config_.num_workers; ++w) {
        if (s.worker_msg[w] != kNoOp) continue;
        out.push_back({K::kWorkerTake, static_cast<std::uint8_t>(w)});
        if (config_.opt_symmetry) break;  // deterministic lowest-id choice
      }
    }
  }
  // Worker phases (fine-grained; POR merges them into Take).
  if (!config_.opt_por) {
    for (int w = 0; w < config_.num_workers; ++w) {
      if (s.worker_msg[w] == kNoOp) continue;
      if (s.worker_phase[w] == 0) {
        out.push_back({K::kWorkerRecord, static_cast<std::uint8_t>(w)});
      } else {
        out.push_back({K::kWorkerAct, static_cast<std::uint8_t>(w)});
      }
    }
  }

  // Switches.
  for (int sw = 0; sw < config_.num_switches; ++sw) {
    if (s.sw_up[sw] && s.sw_inq_len[sw] > 0 && s.ack_queue_len < kQueueCap) {
      out.push_back({K::kSwitchProcess, static_cast<std::uint8_t>(sw)});
    }
    if (!config_.opt_compositional && s.sw_outq_len[sw] > 0 &&
        s.ack_queue_len < kQueueCap) {
      out.push_back({K::kSwitchEmitAck, static_cast<std::uint8_t>(sw)});
    }
  }

  // Monitoring server.
  if (s.ack_queue_len > 0) out.push_back({K::kMonitoring, 0});
  // Eventual apply cursor (PR 10): publishes the oldest pending entry. A
  // fair process — quiescence waits for the log to drain.
  if (s.eventual_log_len > 0) out.push_back({K::kEventualApply, 0});
  // Topo event handler.
  if (s.topo_queue_len > 0) out.push_back({K::kTopoEvent, 0});
  if (s.cleanup_queue_len > 0) out.push_back({K::kCleanupAck, 0});
  for (int sw = 0; sw < config_.num_switches; ++sw) {
    if (s.pending_reset & (1u << sw)) {
      out.push_back({K::kDeferredReset, static_cast<std::uint8_t>(sw)});
    }
  }

  // AbstractApp: reacts once to the failure by replacing DAG A with DAG B.
  if (s.current_dag == 0 && !s.app_switched && s.failures_used > 0) {
    bool has_dag_b = std::any_of(config_.ops.begin(), config_.ops.end(),
                                 [](const ModelOp& op) { return op.dag == 1; });
    if (has_dag_b) out.push_back({K::kAppSwitchDag, 0});
  }

  // CP-partial: crash a worker holding a message (crashing an idle worker
  // is a no-op under NIB-backed state, so only the interesting case is
  // explored).
  if (s.worker_crashes_used < config_.max_worker_crashes) {
    for (int w = 0; w < config_.num_workers; ++w) {
      if (s.worker_msg[w] != kNoOp && s.op_queue_len < kQueueCap) {
        out.push_back({K::kWorkerCrash, static_cast<std::uint8_t>(w)});
      }
    }
  }

  // Failure injection (unfair processes: exploring them is optional).
  for (int sw = 0; sw < config_.num_switches; ++sw) {
    if (s.sw_up[sw] && s.failures_used < config_.max_switch_failures &&
        (config_.failing_switch < 0 || config_.failing_switch == sw) &&
        s.topo_queue_len < kQueueCap) {
      out.push_back({K::kSwitchFail, static_cast<std::uint8_t>(sw)});
    }
    if (!s.sw_up[sw] && config_.allow_recovery &&
        s.topo_queue_len < kQueueCap) {
      out.push_back({K::kSwitchRecover, static_cast<std::uint8_t>(sw)});
    }
  }
  return out;
}

bool PipelineModel::action_is_local(const Action& a) const {
  // Local (invisible) actions touch only one component's private state and
  // commute with everything else: worker phase transitions and ACK
  // emission. Scheduling, switch processing, NIB writes and failures are
  // globally visible.
  using K = Action::Kind;
  return a.kind == K::kWorkerRecord || a.kind == K::kSwitchEmitAck;
}

std::vector<Action> PipelineModel::enabled_actions(const State& s) const {
  std::vector<Action> actions = raw_enabled(s);
  if (config_.opt_por) {
    // Ample set of size one: when an invisible action is enabled, explore
    // only the first (they commute; any order reaches the same states).
    for (const Action& a : actions) {
      if (action_is_local(a)) return {a};
    }
  }
  return actions;
}

std::string PipelineModel::deliver_to_switch(State& s, int sw,
                                             Msg msg) const {
  if (!queue_push(s.sw_inq[sw].data(), s.sw_inq_len[sw], msg)) {
    return "";  // bounded-queue back-pressure: drop silently would be wrong;
                // caller guards on capacity
  }
  return "";
}

std::string PipelineModel::apply_on_switch(State& s, int sw,
                                           Msg msg) const {
  if (is_clear_msg(msg)) {
    s.sw_table[sw] = 0;
    return "";
  }
  if (is_batch_msg(msg)) {
    // A batch is applied OP by OP in ascending index order — the coalescing
    // scan order. DAG predecessors are never co-batched with successors
    // (readiness requires the predecessor already DONE), so intra-batch
    // order cannot violate ①.
    std::uint16_t mask = batch_mask_of(msg);
    for (int op = 0; op < static_cast<int>(config_.ops.size()); ++op) {
      if (!(mask & (1u << op))) continue;
      std::string violation = apply_on_switch(s, sw, static_cast<Msg>(op));
      if (!violation.empty()) return violation;
    }
    return "";
  }
  const ModelOp& op = config_.ops[msg];
  if (op.is_delete) {
    s.sw_table[sw] &= static_cast<std::uint16_t>(~(1u << op.delete_target));
    return "";
  }
  // Safety ① (CorrectDAGOrder): every predecessor must have been installed
  // at least once before this OP's first install.
  if (!(s.installed_once & (1u << msg))) {
    for (std::uint8_t p : op.preds) {
      if (config_.ops[p].is_delete) continue;
      if (!(s.installed_once & (1u << p))) {
        return "CorrectDAGOrder violated: op" + std::to_string(msg) +
               " installed before op" + std::to_string(p);
      }
    }
  } else if (s.sw_table[sw] & (1u << msg)) {
    // §B: unnecessary duplicate install — the OP is already present.
    return "§B violated: duplicate install of op" + std::to_string(msg) +
           " already present on sw" + std::to_string(sw);
  }
  s.sw_table[sw] |= static_cast<std::uint16_t>(1u << msg);
  s.installed_once |= static_cast<std::uint16_t>(1u << msg);
  return "";
}

void PipelineModel::enqueue_ack(State& s, int sw, Msg msg) const {
  if (config_.opt_compositional) {
    queue_push(s.ack_queue.data(), s.ack_queue_len, msg);
  } else {
    queue_push(s.sw_outq[sw].data(), s.sw_outq_len[sw], msg);
  }
}

void PipelineModel::process_ack(State& s, Msg msg) const {
  if (is_clear_msg(msg)) {
    int sw = clear_switch_of(msg);
    s.nib_view[sw] = 0;
    queue_push(s.cleanup_queue.data(), s.cleanup_queue_len,
               static_cast<std::uint8_t>(sw));
    return;
  }
  if (is_batch_msg(msg)) {
    // Batch-ACK commit: ONE transition commits every OP of the batch — the
    // implementation's Nib::commit_ack_batch single transaction.
    std::uint16_t mask = batch_mask_of(msg);
    for (int op = 0; op < static_cast<int>(config_.ops.size()); ++op) {
      if (mask & (1u << op)) process_ack(s, static_cast<Msg>(op));
    }
    return;
  }
  const ModelOp& op = config_.ops[msg];
  s.op_status[msg] = static_cast<std::uint8_t>(MOpStatus::kDone);
  if (op.is_delete) {
    s.nib_view[op.sw] &= static_cast<std::uint16_t>(~(1u << op.delete_target));
  } else {
    s.nib_view[op.sw] |= static_cast<std::uint16_t>(1u << msg);
  }
}

bool PipelineModel::msg_is_strong(Msg msg) const {
  // Strong-class = anything that is not a pure install: deletes (DAG-
  // ordered removal) and CLEAR_TCAM (recovery reset). Mirrors
  // ConsistencyConfig::classify plus the monitoring server's all-install
  // batch test.
  if (is_clear_msg(msg)) return true;
  if (is_batch_msg(msg)) {
    std::uint16_t mask = batch_mask_of(msg);
    for (int op = 0; op < static_cast<int>(config_.ops.size()); ++op) {
      if ((mask & (1u << op)) && config_.ops[op].is_delete) return true;
    }
    return false;
  }
  return config_.ops[msg].is_delete;
}

void PipelineModel::apply_eventual_entry(State& s, Msg msg) const {
  // SENT-freshness filter, same rule as Nib::apply_eventual: a recovery
  // reset may have returned a logged OP to NONE while it waited in the
  // eventual log; only OPs still SENT publish, the level-triggered
  // pipeline re-drives the rest.
  auto fresh = [&](int op) {
    return static_cast<MOpStatus>(s.op_status[op]) == MOpStatus::kSent;
  };
  if (is_batch_msg(msg)) {
    std::uint16_t mask = batch_mask_of(msg);
    for (int op = 0; op < static_cast<int>(config_.ops.size()); ++op) {
      if ((mask & (1u << op)) && fresh(op)) {
        process_ack(s, static_cast<Msg>(op));
      }
    }
    return;
  }
  if (fresh(msg)) process_ack(s, msg);
}

void PipelineModel::reset_switch_ops(State& s, int sw) const {
  for (int op = 0; op < static_cast<int>(config_.ops.size()); ++op) {
    if (config_.ops[op].sw != sw) continue;
    auto status = static_cast<MOpStatus>(s.op_status[op]);
    if (status == MOpStatus::kSent || status == MOpStatus::kDone ||
        status == MOpStatus::kFailedSw) {
      s.op_status[op] = static_cast<std::uint8_t>(MOpStatus::kNone);
    }
  }
  s.nib_view[sw] = 0;
}

std::string PipelineModel::apply(State& s, const Action& a) const {
  using K = Action::Kind;
  switch (a.kind) {
    case K::kSeqSchedule: {
      s.op_status[a.subject] =
          static_cast<std::uint8_t>(MOpStatus::kScheduled);
      queue_push(s.op_queue.data(), s.op_queue_len,
                 static_cast<Msg>(a.subject));
      return "";
    }
    case K::kSeqBatchPass: {
      // One atomic coalescing pass, mirroring Sequencer::schedule_ready_ops:
      // scan OPs in index order, mark each ready OP SCHEDULED at scan time,
      // coalesce per switch (first-appearance flush order), flush inline
      // when a chunk reaches batch_size, then flush the remainders at scan
      // end. Singleton chunks travel as the classic per-OP message (the
      // implementation forwards those through the non-batch path).
      std::array<std::uint16_t, kMaxSwitches> pending{};
      std::array<std::uint8_t, kMaxSwitches> pending_count{};
      std::array<std::uint8_t, kMaxSwitches> flush_order{};
      std::uint8_t flush_order_len = 0;
      bool aborted = false;
      auto flush = [&](int sw) {
        if (pending_count[sw] == 0 || aborted) return;
        Msg msg = pending_count[sw] == 1
                      ? static_cast<Msg>(
                            std::countr_zero<std::uint16_t>(pending[sw]))
                      : make_batch_msg(sw, pending[sw]);
        if (!queue_push(s.op_queue.data(), s.op_queue_len, msg)) {
          // Bounded-queue back-pressure: unmark this chunk and stop the
          // pass; the action stays enabled and re-runs once space frees up.
          for (int op = 0; op < static_cast<int>(config_.ops.size()); ++op) {
            if (pending[sw] & (1u << op)) {
              s.op_status[op] = static_cast<std::uint8_t>(MOpStatus::kNone);
            }
          }
          aborted = true;
        }
        pending[sw] = 0;
        pending_count[sw] = 0;
      };
      for (int op = 0;
           op < static_cast<int>(config_.ops.size()) && !aborted; ++op) {
        if (!op_schedulable(s, op)) continue;
        int sw = config_.ops[op].sw;
        s.op_status[op] = static_cast<std::uint8_t>(MOpStatus::kScheduled);
        if (pending_count[sw] == 0) {
          flush_order[flush_order_len++] = static_cast<std::uint8_t>(sw);
        }
        pending[sw] |= static_cast<std::uint16_t>(1u << op);
        ++pending_count[sw];
        if (pending_count[sw] >= config_.batch_size) flush(sw);
      }
      for (int i = 0; i < flush_order_len && !aborted; ++i) {
        flush(flush_order[i]);
      }
      if (aborted) {
        // Unmark any chunks left un-flushed when the queue filled up.
        for (int sw = 0; sw < config_.num_switches; ++sw) {
          for (int op = 0; op < static_cast<int>(config_.ops.size()); ++op) {
            if (pending[sw] & (1u << op)) {
              s.op_status[op] = static_cast<std::uint8_t>(MOpStatus::kNone);
            }
          }
        }
      }
      return "";
    }
    case K::kWorkerTake: {
      int w = a.subject;
      Msg msg = queue_pop(s.op_queue.data(), s.op_queue_len);
      if (!config_.opt_por) {
        s.worker_msg[w] = msg;
        s.worker_phase[w] = 0;
        return "";
      }
      // POR macro-step: take + record + act as one atomic transition (the
      // merged steps commute with every other component).
      if (is_clear_msg(msg)) {
        return deliver_to_switch(s, clear_switch_of(msg), msg);
      }
      int sw = msg_switch(msg);
      if (static_cast<MHealth>(s.nib_health[sw]) != MHealth::kUp) {
        // UpdateNIBFail: the whole message (an OP, or every OP of a batch)
        // is marked FAILED_SWITCH and dropped.
        if (is_batch_msg(msg)) {
          mark_batch_status(s, msg, MOpStatus::kFailedSw);
        } else {
          s.op_status[msg] =
              static_cast<std::uint8_t>(MOpStatus::kFailedSw);
        }
        return "";
      }
      if (is_batch_msg(msg)) {
        mark_batch_status(s, msg, MOpStatus::kSent);
      } else {
        s.op_status[msg] = static_cast<std::uint8_t>(MOpStatus::kSent);
      }
      return deliver_to_switch(s, sw, msg);
    }
    case K::kWorkerRecord: {
      int w = a.subject;
      Msg msg = s.worker_msg[w];
      if (is_clear_msg(msg)) {
        s.worker_phase[w] = 1;  // CLEAR is health-exempt (P7 exception)
        return "";
      }
      int sw = msg_switch(msg);
      if (static_cast<MHealth>(s.nib_health[sw]) != MHealth::kUp) {
        if (is_batch_msg(msg)) {
          mark_batch_status(s, msg, MOpStatus::kFailedSw);
        } else {
          s.op_status[msg] = static_cast<std::uint8_t>(MOpStatus::kFailedSw);
        }
        s.worker_msg[w] = kNoOp;  // UpdateNIBFail, done with this message
        return "";
      }
      if (!config_.bugs.send_before_record) {
        if (is_batch_msg(msg)) {
          mark_batch_status(s, msg, MOpStatus::kSent);
        } else {
          s.op_status[msg] = static_cast<std::uint8_t>(MOpStatus::kSent);
        }
      }
      s.worker_phase[w] = 1;
      return "";
    }
    case K::kWorkerAct: {
      int w = a.subject;
      Msg msg = s.worker_msg[w];
      s.worker_msg[w] = kNoOp;
      s.worker_phase[w] = 0;
      if (is_clear_msg(msg)) {
        return deliver_to_switch(s, clear_switch_of(msg), msg);
      }
      if (config_.bugs.send_before_record) {
        // Listing 1 ordering: the NIB learns "sent" only now.
        if (is_batch_msg(msg)) {
          mark_batch_status(s, msg, MOpStatus::kSent);
        } else {
          s.op_status[msg] = static_cast<std::uint8_t>(MOpStatus::kSent);
        }
      }
      return deliver_to_switch(s, msg_switch(msg), msg);
    }
    case K::kSwitchProcess: {
      int sw = a.subject;
      Msg msg = queue_pop(s.sw_inq[sw].data(), s.sw_inq_len[sw]);
      std::string violation = apply_on_switch(s, sw, msg);
      if (!violation.empty()) return violation;
      // A batch is acknowledged as ONE batch-ACK (kBatchAck), not per OP.
      enqueue_ack(s, sw, msg);
      return "";
    }
    case K::kSwitchEmitAck: {
      int sw = a.subject;
      Msg msg = queue_pop(s.sw_outq[sw].data(), s.sw_outq_len[sw]);
      queue_push(s.ack_queue.data(), s.ack_queue_len, msg);
      return "";
    }
    case K::kMonitoring: {
      Msg msg = queue_pop(s.ack_queue.data(), s.ack_queue_len);
      if (config_.eventual_installs) {
        const std::uint8_t bound = static_cast<std::uint8_t>(
            std::max(1, config_.staleness_bound));
        if (!msg_is_strong(msg)) {
          // Eventual route: bound enforcement drains oldest-first at commit
          // time (E1 structurally), then the ACK parks in the log; its OPs
          // stay SENT until EventualPump.Apply publishes them.
          while (s.eventual_log_len >= bound) {
            apply_eventual_entry(
                s, queue_pop(s.eventual_log.data(), s.eventual_log_len));
          }
          queue_push(s.eventual_log.data(), s.eventual_log_len, msg);
          if (s.eventual_log_len > bound) {
            return "E1 violated: eventual log holds " +
                   std::to_string(int(s.eventual_log_len)) +
                   " entries, bound is " + std::to_string(int(bound));
          }
          return "";
        }
        // Strong-class ACK: barrier — drain every pending entry before the
        // commit so the strong transaction never observes eventual state.
        if (s.eventual_log_len > 0) {
          if (config_.bug_skip_barrier) {
            int pending = s.eventual_log_len;
            process_ack(s, msg);
            return "E2 violated: strong-class ACK committed with " +
                   std::to_string(pending) + " pending eventual entries";
          }
          while (s.eventual_log_len > 0) {
            apply_eventual_entry(
                s, queue_pop(s.eventual_log.data(), s.eventual_log_len));
          }
        }
      }
      process_ack(s, msg);
      return "";
    }
    case K::kEventualApply: {
      apply_eventual_entry(
          s, queue_pop(s.eventual_log.data(), s.eventual_log_len));
      return "";
    }
    case K::kTopoEvent: {
      std::uint8_t event = queue_pop(s.topo_queue.data(), s.topo_queue_len);
      int sw = event & 0x0f;
      bool up = (event & 0x10) != 0;
      if (!up) {
        s.nib_health[sw] = static_cast<std::uint8_t>(MHealth::kDown);
        return "";
      }
      if (static_cast<MHealth>(s.nib_health[sw]) == MHealth::kUp) return "";
      // kDown: begin recovery. kRecovering: the previous CLEAR may have
      // died with a repeated failure — re-issue (duplicates are absorbed by
      // the stale-ACK guard in kCleanupAck).
      if (config_.bugs.skip_recovery_cleanup) {
        s.nib_health[sw] = static_cast<std::uint8_t>(MHealth::kUp);
        return "";
      }
      s.nib_health[sw] = static_cast<std::uint8_t>(MHealth::kRecovering);
      Msg clear = static_cast<Msg>(kClearBase + sw);
      if (config_.bugs.direct_clear_tcam) {
        return deliver_to_switch(s, sw, clear);  // bypasses the Worker Pool
      }
      queue_push(s.op_queue.data(), s.op_queue_len, clear);
      return "";
    }
    case K::kCleanupAck: {
      int sw = queue_pop(s.cleanup_queue.data(), s.cleanup_queue_len);
      if (static_cast<MHealth>(s.nib_health[sw]) != MHealth::kRecovering) {
        return "";  // stale
      }
      if (config_.bugs.mark_up_before_reset) {
        s.nib_health[sw] = static_cast<std::uint8_t>(MHealth::kUp);
        s.pending_reset |= static_cast<std::uint8_t>(1u << sw);
        return "";
      }
      reset_switch_ops(s, sw);
      s.nib_health[sw] = static_cast<std::uint8_t>(MHealth::kUp);
      return "";
    }
    case K::kDeferredReset: {
      int sw = a.subject;
      s.pending_reset &= static_cast<std::uint8_t>(~(1u << sw));
      reset_switch_ops(s, sw);
      return "";
    }
    case K::kSwitchFail: {
      int sw = a.subject;
      s.sw_up[sw] = 0;
      ++s.failures_used;
      if (config_.complete_failure) {
        s.sw_table[sw] = 0;
        s.sw_inq_len[sw] = 0;
        s.sw_outq_len[sw] = 0;
      } else {
        s.sw_inq_len[sw] = 0;  // partial: TCAM kept, requests lost
      }
      queue_push(s.topo_queue.data(), s.topo_queue_len,
                 static_cast<std::uint8_t>(sw));
      return "";
    }
    case K::kSwitchRecover: {
      int sw = a.subject;
      s.sw_up[sw] = 1;
      queue_push(s.topo_queue.data(), s.topo_queue_len,
                 static_cast<std::uint8_t>(sw | 0x10));
      return "";
    }
    case K::kWorkerCrash: {
      int w = a.subject;
      Msg msg = s.worker_msg[w];
      s.worker_msg[w] = kNoOp;
      s.worker_phase[w] = 0;
      ++s.worker_crashes_used;
      if (!config_.bugs.pop_before_process && msg != kNoOp) {
        // Crash-safe discipline (AckQueueRead/AckQueuePop): the item was
        // never acknowledged off the queue, so the restarted worker (or a
        // sibling) re-reads it. Modeled as a front re-insert. A held BATCH
        // re-enqueues whole — exactly-once for every OP in it.
        for (int i = s.op_queue_len; i > 0; --i) {
          s.op_queue[i] = s.op_queue[i - 1];
        }
        s.op_queue[0] = msg;
        ++s.op_queue_len;
      }
      // With the pop-before-process bug the in-progress item dies with the
      // worker's locals — the §3.9 "event processing" error. At batch_size
      // > 1 the whole held batch is lost.
      return "";
    }
    case K::kAppSwitchDag: {
      s.current_dag = 1;
      s.app_switched = 1;
      return "";
    }
  }
  return "";
}

bool PipelineModel::quiescent(const State& s) const {
  for (const Action& a : raw_enabled(s)) {
    if (!a.is_failure()) return false;
  }
  return true;
}

std::string PipelineModel::check_quiescent_consistency(const State& s) const {
  // ③ CorrectRoutingState: the controller's view matches every healthy
  // switch.
  for (int sw = 0; sw < config_.num_switches; ++sw) {
    if (!s.sw_up[sw]) continue;
    if (s.nib_view[sw] != s.sw_table[sw]) {
      std::ostringstream out;
      out << "CorrectRoutingState violated on sw" << sw << ": view="
          << s.nib_view[sw] << " table=" << s.sw_table[sw];
      return out.str();
    }
  }
  // An OP is "blocked" when it, or any transitive predecessor, targets a
  // switch that is dead (or not UP in the NIB). Such OPs are excused from
  // condition ②: the DAG cannot finish and "the applications must change
  // the DAG" (§F Remark) — not a controller fault.
  auto healthy = [&](int sw) {
    return s.sw_up[sw] &&
           static_cast<MHealth>(s.nib_health[sw]) == MHealth::kUp;
  };
  std::array<int, kMaxOps> blocked_memo;
  blocked_memo.fill(-1);
  auto blocked = [&](auto&& self, int op) -> bool {
    if (blocked_memo[op] >= 0) return blocked_memo[op] != 0;
    blocked_memo[op] = 0;  // break (impossible) cycles conservatively
    bool result = !healthy(config_.ops[op].sw);
    if (!result) {
      for (std::uint8_t p : config_.ops[op].preds) {
        if (self(self, p)) {
          result = true;
          break;
        }
      }
    }
    blocked_memo[op] = result ? 1 : 0;
    return result;
  };
  // ② CorrectDAGInstalled for the current DAG.
  for (int op = 0; op < static_cast<int>(config_.ops.size()); ++op) {
    if (!op_in_current_dag(s, op)) continue;
    const ModelOp& model_op = config_.ops[op];
    if (blocked(blocked, op)) continue;
    if (model_op.is_delete) {
      if (s.sw_table[model_op.sw] & (1u << model_op.delete_target)) {
        return "CorrectDAGInstalled violated: delete op" +
               std::to_string(op) + " not effective at quiescence";
      }
    } else if (!(s.sw_table[model_op.sw] & (1u << op))) {
      return "CorrectDAGInstalled violated: op" + std::to_string(op) +
             " never installed at quiescence";
    }
  }
  return "";
}

}  // namespace zenith::mc
