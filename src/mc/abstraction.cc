#include "mc/abstraction.h"

#include <algorithm>
#include <sstream>

namespace zenith::mc {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace

std::uint64_t AbstractState::digest() const {
  std::uint64_t hash = kFnvOffset;
  hash = fnv1a(hash, switches.size());
  for (const AbstractSwitch& sw : switches) {
    for (std::uint32_t count : sw.status_counts) hash = fnv1a(hash, count);
    hash = fnv1a(hash, static_cast<std::uint64_t>(sw.health));
    hash = fnv1a(hash, sw.fabric_alive ? 1 : 0);
    hash = fnv1a(hash, sw.view_size);
  }
  hash = fnv1a(hash, certified_dags.size());
  for (std::uint64_t id : certified_dags) hash = fnv1a(hash, id);
  hash = fnv1a(hash, current_dag);
  hash = fnv1a(hash, down_links);
  // Folded only when replication is on: digests of pre-replication runs are
  // byte-identical to what they were before shards existed.
  if (!shards.empty()) {
    hash = fnv1a(hash, shards.size());
    for (const AbstractShard& shard : shards) {
      hash = fnv1a(hash, shard.epoch);
      hash = fnv1a(hash, shard.leader);
      hash = fnv1a(hash, shard.committed_prefix);
      hash = fnv1a(hash, shard.committed_digest);
      hash = fnv1a(hash, shard.replicas.size());
      for (const AbstractReplica& r : shard.replicas) {
        hash = fnv1a(hash, r.alive ? 1 : 0);
        hash = fnv1a(hash, r.partitioned ? 1 : 0);
        hash = fnv1a(hash, r.log_end);
        hash = fnv1a(hash, r.commit_index);
        hash = fnv1a(hash, r.applied_index);
      }
    }
  }
  if (eventual_pending != 0) hash = fnv1a(hash, eventual_pending);
  return hash;
}

AbstractState abstract_state(Experiment& exp,
                             const std::vector<DagId>& submitted) {
  AbstractState state;
  Nib& nib = exp.nib();

  for (SwitchId sw : nib.switches()) {
    std::size_t index = sw.value();
    if (state.switches.size() <= index) state.switches.resize(index + 1);
    AbstractSwitch& abs = state.switches[index];
    for (std::size_t s = 0; s < kNumOpStatuses; ++s) {
      OpStatus status = static_cast<OpStatus>(s);
      abs.status_counts[s] =
          static_cast<std::uint32_t>(nib.ops_on_switch(sw, status).size());
    }
    abs.health = nib.switch_health(sw);
    abs.fabric_alive = exp.fabric().alive(sw);
    abs.view_size =
        static_cast<std::uint32_t>(nib.view_installed(sw).size());
  }

  for (DagId id : submitted) {
    if (nib.dag_is_done(id)) state.certified_dags.push_back(id.value());
  }
  std::sort(state.certified_dags.begin(), state.certified_dags.end());
  state.certified_dags.erase(
      std::unique(state.certified_dags.begin(), state.certified_dags.end()),
      state.certified_dags.end());

  state.current_dag = nib.current_dag() ? nib.current_dag()->value() : 0;
  state.down_links = static_cast<std::uint32_t>(nib.down_links().size());

  if (const repl::ReplicatedControlPlane* repl = exp.controller().repl()) {
    for (std::size_t i = 0; i < repl->num_shards(); ++i) {
      const repl::Shard& shard = repl->shard(i);
      AbstractShard abs;
      abs.epoch = shard.epoch();
      abs.leader = shard.leader();
      abs.committed_prefix = shard.applied_to_nib();
      std::uint64_t digest = kFnvOffset;
      for (const repl::LogEntry& entry : shard.applied_log()) {
        digest = fnv1a(digest, entry.index);
        digest = fnv1a(digest, entry.sw.value());
        digest = fnv1a(digest, entry.ops.size());
        for (const Op& op : entry.ops) digest = fnv1a(digest, op.id.value());
      }
      abs.committed_digest = digest;
      for (const repl::Replica& r : shard.replicas()) {
        AbstractReplica abs_r;
        abs_r.alive = r.alive;
        abs_r.partitioned = r.partitioned;
        abs_r.log_end = r.log_end();
        abs_r.commit_index = r.commit_index;
        abs_r.applied_index = r.applied_index;
        abs.replicas.push_back(abs_r);
      }
      state.shards.push_back(std::move(abs));
    }
  }
  state.eventual_pending = nib.eventual_pending();
  return state;
}

std::vector<std::string> check_quiescent(Experiment& exp, DagId last_dag,
                                         const FaultHistory& history) {
  std::vector<std::string> violations;
  Nib& nib = exp.nib();

  // (1) No transitional statuses survive quiescence. The model's quiescent
  // states (empty queues, no held OPs) have every OP in {NONE, SENT, DONE,
  // FAILED_SW}; SCHEDULED or IN_FLIGHT here means work was silently dropped
  // — exactly what the pop-before-process crash bug produces.
  for (OpStatus stuck : {OpStatus::kScheduled, OpStatus::kInFlight}) {
    for (OpId id : nib.ops_with_status(stuck)) {
      std::ostringstream msg;
      msg << "op" << id.value() << " stuck " << to_string(stuck)
          << " at quiescence (model: transitional statuses drain)";
      violations.push_back(msg.str());
    }
  }

  // (2) SENT with a healthy, alive target is a lost ACK the model cannot
  // produce: every model execution delivers the ACK of a surviving switch.
  // CLEAR_TCAM/DUMP_TABLE are control OPs whose replies route through the
  // cleanup/reconciliation paths, not the DONE transition.
  for (OpId id : nib.ops_with_status(OpStatus::kSent)) {
    const Op& op = nib.op(id);
    if (op.type == OpType::kClearTcam || op.type == OpType::kDumpTable) {
      continue;
    }
    if (nib.switch_up(op.sw) && exp.fabric().alive(op.sw)) {
      std::ostringstream msg;
      msg << "op" << id.value() << " SENT to healthy sw" << op.sw.value()
          << " never acked (model: surviving switches ack every send)";
      violations.push_back(msg.str());
    }
  }

  // (3) FAILED_SW requires the switch to actually have been down at some
  // point — the model only marks an OP failed when the worker observes
  // NIB health != UP, which requires a real failure event.
  if (!history.assume_any) {
    for (OpId id : nib.ops_with_status(OpStatus::kFailedSwitch)) {
      const Op& op = nib.op(id);
      if (!history.ever_down.count(op.sw.value())) {
        std::ostringstream msg;
        msg << "op" << id.value() << " FAILED_SW on sw" << op.sw.value()
            << " which never failed (model: failure status requires a "
               "failure)";
        violations.push_back(msg.str());
      }
    }
  }

  // (4) R_c only contains committed work: view membership without DONE
  // status means the view was edited outside an ACK transaction.
  for (SwitchId sw : nib.switches()) {
    for (OpId id : nib.view_installed(sw)) {
      if (nib.op_status(id) != OpStatus::kDone) {
        std::ostringstream msg;
        msg << "view(sw" << sw.value() << ") contains op" << id.value()
            << " with status " << to_string(nib.op_status(id))
            << " (model: view edits commit with the DONE transition)";
        violations.push_back(msg.str());
      }
    }
  }

  // (5) Condition ③ at quiescence: R_c equals ground truth on healthy
  // switches. The campaign's own oracle checks this for the last DAG;
  // repeated here network-wide because the model's invariant is
  // unconditional.
  ConsistencyReport report = exp.checker().check(std::nullopt);
  if (!report.view_consistent) {
    std::string detail =
        report.diffs.empty() ? "(no diff detail)" : report.diffs.front();
    violations.push_back("routing view diverges from ground truth: " +
                         detail);
  }

  // (6) Condition ② liveness at quiescence: when every switch the target
  // DAG touches survived, the DAG must have certified.
  if (nib.has_dag(last_dag)) {
    bool all_alive = true;
    for (SwitchId sw : nib.dag(last_dag).touched_switches()) {
      if (!exp.fabric().alive(sw)) {
        all_alive = false;
        break;
      }
    }
    if (all_alive && !nib.dag_is_done(last_dag)) {
      std::ostringstream msg;
      msg << "dag" << last_dag.value()
          << " touches only live switches yet never certified";
      violations.push_back(msg.str());
    }
  }

  // (7) Replicated commit path: the shard-log safety invariants (R1–R4)
  // must hold at quiescence. These are the abstract-replica-set properties
  // the model's log is defined by — contiguous applied prefix, quorum
  // durability of every applied entry, monotone epochs, replica
  // convergence under a serving leader.
  if (auto* repl = exp.controller().repl(); repl != nullptr) {
    for (std::string& violation :
         repl->check_invariants(/*at_quiescence=*/true)) {
      violations.push_back("replication: " + std::move(violation));
    }
  }

  // (8) Adaptive consistency (PR 10): the model's quiescent states have an
  // empty eventual log (EventualPump.Apply stays enabled until it drains),
  // and no strong-class commit ever observed eventual state (E2 — the
  // barrier discipline the model encodes as a pre-commit drain).
  if (nib.eventual_pending() > 0) {
    std::ostringstream msg;
    msg << nib.eventual_pending()
        << " eventual entries pending at quiescence (model: the apply "
           "cursor drains before quiescence)";
    violations.push_back(msg.str());
  }
  if (nib.strong_commits_with_pending() > 0) {
    std::ostringstream msg;
    msg << nib.strong_commits_with_pending()
        << " strong-class commit(s) with eventual entries pending (model: "
           "strong ACKs barrier before committing, E2)";
    violations.push_back(msg.str());
  }

  return violations;
}

}  // namespace zenith::mc
