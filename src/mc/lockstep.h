// Differential lockstep conformance: the same seeded scenario — topology,
// workload, fault schedule — driven through the real core pipeline on the
// deterministic simulator and through the formal-model substitute, compared
// at quiescence points.
//
// The run is sliced into phases: each phase submits one workload update,
// replays its slice of the fault schedule through the (ungated) Trace
// Orchestrator, then waits for quiescence and takes an abstraction digest
// (mc/abstraction.h) folded with a projection of the NIB event stream. The
// model side contributes twice:
//  * statically — the PipelineModel is checked (same batch_size, same §3.9
//    bug knobs, a fault budget matching the schedule) and its verdict is
//    attached to the report;
//  * at each quiescence point — check_quiescent() evaluates the model's
//    quiescent-state invariants over the implementation. Any violation is
//    a divergence: the implementation reached a quiescent state the model
//    cannot reach.
// The checker stops at the FIRST divergent phase, attaches the flight
// recorder's causal tail, and can ddmin-shrink the divergence-inducing
// schedule with the same machinery chaos reproducers use.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "chaos/shrink.h"
#include "mc/abstraction.h"
#include "mc/checker.h"

namespace zenith::mc {

struct LockstepConfig {
  /// Scenario source: topology, seed, controller + core config (including
  /// batch_size and bug knobs), schedule knobs, workload cadence.
  chaos::CampaignConfig campaign;
  /// Quiescence points per run. The schedule's horizon is sliced into this
  /// many windows; each window's faults race one workload update.
  std::size_t phases = 4;
  /// Per-phase quiescence budget; overrunning it is itself a divergence
  /// (the model's executions always drain).
  SimTime settle_timeout = seconds(10);
  /// Also check the downscaled PipelineModel instance (same batch_size and
  /// bug knobs) and attach its verdict to the report.
  bool check_model = true;
};

/// One quiescence point's record.
struct PhaseRecord {
  std::size_t index = 0;
  SimTime at = 0;                   // sim time when quiescence was declared
  std::uint64_t digest = 0;         // abstraction ⊕ NIB-event projection
  std::size_t events_injected = 0;  // schedule events replayed this phase
};

struct LockstepReport {
  bool diverged = false;
  std::size_t divergent_phase = 0;  // meaningful only when diverged
  std::vector<std::string> divergences;
  std::vector<PhaseRecord> phases;
  /// PipelineModel verdict for the matching small-scope instance (valid when
  /// LockstepConfig::check_model). Informational: the model exploring a
  /// violation under deliberate bug knobs corroborates an implementation
  /// divergence; only implementation-side mismatches set `diverged`.
  CheckResult model_result;
  /// Causal tail frozen at the first divergence (empty when conformant).
  std::string flight_recorder_dump;

  /// Stable digest over the verdict, divergence messages and every phase
  /// digest — the value the golden corpus pins per scenario cell.
  std::uint64_t report_digest() const;
  std::string summary() const;
};

class LockstepChecker {
 public:
  explicit LockstepChecker(LockstepConfig config);

  /// Generates the seed's schedule and runs it.
  LockstepReport run();

  /// Runs an explicit schedule (the shrinker's entry point).
  LockstepReport run(const chaos::ChaosSchedule& schedule);

  struct DivergenceShrink {
    chaos::ChaosSchedule minimal;
    to::Trace trace;  // replayable reproducer of the minimal schedule
    LockstepReport minimal_report;
    std::size_t oracle_runs = 0;
    bool one_minimal = false;
  };

  /// ddmin-shrinks a divergence-inducing schedule; each oracle probe is one
  /// full lockstep run.
  DivergenceShrink shrink(const chaos::ChaosSchedule& failing,
                          std::size_t max_oracle_runs = 48);

  /// The schedule run() generated (valid after run()).
  const chaos::ChaosSchedule& schedule() const { return schedule_; }
  const LockstepConfig& config() const { return config_; }

 private:
  LockstepConfig config_;
  chaos::ChaosSchedule schedule_;
};

/// Installs check_quiescent() as the chaos campaign's lockstep oracle
/// (CampaignConfig::lockstep). Idempotent; the fault history is unknown at
/// the campaign layer, so history-conditioned invariants are skipped there.
void enable_campaign_lockstep_oracle();

}  // namespace zenith::mc
