// Abstraction layer for model–implementation conformance.
//
// The lockstep checker compares the running implementation against the
// formal-model substitute not state-for-state (the implementation carries
// timers, channels and observability the model elides) but through an
// abstraction function: a digest of exactly the state the NADIR spec talks
// about — per-switch OP status multisets, the controller's routing view
// R_c, switch health, DAG certification and the current target. Two
// executions conform when their abstracted states agree at every
// quiescence point.
//
// check_quiescent() is the model side made executable: each invariant is a
// property every reachable quiescent model state satisfies (verified by the
// explicit-state checker over the small scenarios), restated over the
// implementation's NIB. A violation therefore IS a divergence — the
// implementation reached a quiescent state the model cannot reach.
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "dag/op.h"
#include "harness/experiment.h"

namespace zenith::mc {

/// One switch's abstracted view: how many OPs target it in each lifecycle
/// status, what the controller believes about its health, whether the
/// fabric actually has it alive, and the size of R_c restricted to it.
struct AbstractSwitch {
  std::array<std::uint32_t, kNumOpStatuses> status_counts{};
  SwitchHealth health = SwitchHealth::kUp;
  bool fabric_alive = true;
  std::uint32_t view_size = 0;
};

/// One replica of a shard's replicated log, abstracted to what the
/// replication safety argument quantifies over: how far its durable log
/// reaches and how much of it is committed/applied.
struct AbstractReplica {
  bool alive = true;
  bool partitioned = false;
  std::uint64_t log_end = 0;
  std::uint64_t commit_index = 0;
  std::uint64_t applied_index = 0;
};

/// One shard's abstract replica set: leader epoch, the committed-log prefix
/// (length + content digest), and each replica's indices. This is the
/// "abstract replica set" the lockstep harness diffs when the replicated
/// commit path diverges from the model.
struct AbstractShard {
  std::uint64_t epoch = 0;
  std::uint64_t leader = 0;
  std::uint64_t committed_prefix = 0;       // entries applied to the NIB
  std::uint64_t committed_digest = 0;       // FNV over the applied entries
  std::vector<AbstractReplica> replicas;
};

/// The abstracted controller state at one quiescence point. Everything the
/// spec's invariants quantify over, nothing else — wall-clock, queue
/// occupancy and observability state are deliberately absent so that
/// model and implementation digests are comparable.
struct AbstractState {
  std::vector<AbstractSwitch> switches;  // indexed by SwitchId value
  std::vector<std::uint64_t> certified_dags;  // sorted
  std::uint64_t current_dag = 0;  // 0 = none
  std::uint32_t down_links = 0;
  /// Empty on an unreplicated controller; folded into the digest only when
  /// populated so pre-replication digests are unchanged.
  std::vector<AbstractShard> shards;
  /// Eventual-log occupancy (PR 10): install ACKs committed but not yet
  /// published to readers. Zero in all-strong runs and at every quiescence
  /// point (the lockstep oracle asserts it); folded into the digest only
  /// when nonzero so pre-PR-10 digests are unchanged.
  std::uint64_t eventual_pending = 0;

  /// FNV-1a over the canonical serialization.
  std::uint64_t digest() const;
};

/// Builds the abstraction of the experiment's current state. `submitted`
/// lists the DAG ids the run has submitted so far (the NIB's certification
/// flags are per-id; the caller knows the id universe).
AbstractState abstract_state(Experiment& exp,
                             const std::vector<DagId>& submitted);

/// What the checker may assume about the run's fault history. The model's
/// invariants are fault-conditional (an OP may be FAILED_SW only if its
/// switch was ever down); callers that replayed a known schedule record it
/// here, callers hooking an arbitrary campaign set `assume_any`.
struct FaultHistory {
  std::set<std::uint32_t> ever_down;  // SwitchId values that failed at least once
  bool ofc_disrupted = false;         // any OFC/component crash occurred
  /// True = fault history unknown; skip invariants conditioned on it.
  bool assume_any = false;
};

/// Checks the model's quiescent-state invariants over the implementation.
/// Call only at quiescence (schedule exhausted, transients recovered, the
/// convergence probe satisfied); mid-run the transitional statuses are
/// legitimately populated. Returns one message per violated invariant.
std::vector<std::string> check_quiescent(Experiment& exp, DagId last_dag,
                                         const FaultHistory& history);

}  // namespace zenith::mc
