#include "mc/core_spec.h"

#include <string>

namespace zenith::mc {

using nadir::FieldMap;
using nadir::Spec;
using nadir::StepContext;
using nadir::Type;
using nadir::Value;
using nadir::ValueVec;

CoreSpecScenario CoreSpecScenario::stage(int n) {
  CoreSpecScenario s;
  switch (n) {
    case 1: s.handle_switch_partial = true; break;
    case 2: s.handle_cp_partial = true; break;
    case 3:
      s.handle_switch_partial = true;
      s.handle_cp_partial = true;
      break;
    case 4:
      s.handle_switch_partial = true;
      s.handle_cp_partial = true;
      s.handle_switch_complete_permanent = true;
      break;
    case 5:
      s.handle_switch_partial = true;
      s.handle_cp_partial = true;
      s.handle_switch_complete_permanent = true;
      s.handle_switch_complete_transient = true;
      break;
    case 6:
      s.handle_switch_partial = true;
      s.handle_cp_partial = true;
      s.handle_switch_complete_permanent = true;
      s.handle_switch_complete_transient = true;
      s.directed_reconciliation = true;
      break;
    default: break;
  }
  return s;
}

std::string CoreSpecScenario::name() const {
  std::string base;
  if (directed_reconciliation) base = "SW CT (DR)";
  else if (handle_switch_complete_transient) base = "SW CT";
  else if (handle_switch_complete_permanent) base = "SW CP";
  else if (handle_switch_partial && handle_cp_partial) base = "SW+CP PT";
  else if (handle_cp_partial) base = "CP PT";
  else if (handle_switch_partial) base = "SW PT";
  else base = "no-failure";
  if (batch_size > 1) base += " bs" + std::to_string(batch_size);
  return base;
}

namespace {

// Edge-based predecessor check: b is a predecessor of id if <<b, id>> in e.
bool preds_installed(const Value& dag, const Value& installed,
                     std::int64_t id) {
  for (const Value& edge : dag.field("e").as_set()) {
    if (edge.at(1).as_int() != id) continue;
    if (!installed.set_contains(edge.at(0))) return false;
  }
  return true;
}

}  // namespace

nadir::Spec build_core_spec(const CoreSpecScenario& scenario,
                            int num_switches) {
  (void)num_switches;  // kept for interface symmetry; the model uses one
                       // shared ingress queue with switch ids in op records
  Spec spec("ZenithCoreSpec-" + scenario.name());
  const int batch_size = scenario.batch_size;
  const bool batched = batch_size > 1;

  auto op_type = Type::record({{"op", Type::integer()},
                               {"sw", Type::integer()},
                               {"nh", Type::integer()},
                               {"dst", Type::integer()},
                               {"priority", Type::integer()}});
  auto edge_type = Type::seq(Type::integer());
  auto dag_type = Type::record({{"id", Type::integer()},
                                {"v", Type::set(op_type)},
                                {"e", Type::set(edge_type)}});

  if (spec.find_global("DAGEventQueue") == nullptr) {
    spec.global("DAGEventQueue", Type::seq(dag_type), Value::seq({}), true);
  }
  spec.global("CurrentDag", Type::nullable(dag_type), Value::nil(), true);
  spec.global("PendingOps", Type::set(op_type), Value::set({}), true);
  spec.global("OPQueue", Type::seq(op_type), Value::seq({}), true);
  spec.global("SWInQ", Type::seq(op_type), Value::seq({}), true);
  // Batched pipeline: one ACK message carries every OP id of the batch, and
  // the Monitoring Server commits it in one transaction.
  spec.global("FromSW",
              batched ? Type::seq(Type::seq(Type::integer()))
                      : Type::seq(Type::integer()),
              Value::seq({}), true);
  spec.global("SwTable", Type::set(op_type), Value::set({}), true);
  spec.global("InstalledIds", Type::set(Type::integer()), Value::set({}),
              true);
  spec.global("InstalledDags", Type::set(Type::integer()), Value::set({}),
              true);
  if (scenario.handle_cp_partial) {
    // Worker crash-recovery slot (Listing 3's workerPoolState). At
    // batch_size > 1 the slot holds the whole in-progress batch so a crash
    // re-forwards every OP of it exactly once.
    spec.global("WorkerState",
                batched ? Type::nullable(Type::seq(op_type))
                        : Type::nullable(op_type),
                Value::nil(), true);
  }
  if (scenario.handle_switch_partial ||
      scenario.handle_switch_complete_transient) {
    spec.global("SwitchHealth", Type::enumeration({"UP", "DOWN", "RECOVER"}),
                Value::string("UP"), true);
    spec.global("HealthEvents", Type::seq(Type::string()), Value::seq({}),
                true);
    spec.global("FailureBudget", Type::integer(), Value::integer(1), true);
  }
  if (scenario.handle_switch_complete_transient) {
    spec.global("FlowAcks", Type::set(Type::integer()), Value::set({}), true);
  }
  if (scenario.directed_reconciliation) {
    spec.global("DumpResult", Type::nullable(Type::set(op_type)),
                Value::nil(), true);
  }

  // ---- DAG Scheduler ----------------------------------------------------------
  {
    nadir::Process scheduler("DagScheduler");
    scheduler.step(nadir::Step{
        "SchedLoop",
        {"DAGEventQueue", "CurrentDag", "PendingOps"},
        {"DAGEventQueue", "CurrentDag", "PendingOps"},
        [](StepContext& ctx) {
          ctx.await(ctx.global("CurrentDag").is_nil());
          if (ctx.blocked()) return;
          Value dag = ctx.fifo_get("DAGEventQueue");
          if (ctx.blocked()) return;
          ctx.set_global("PendingOps", dag.field("v"));
          ctx.set_global("CurrentDag", std::move(dag));
          ctx.jump("SchedLoop");
        }});
    if (scenario.handle_switch_complete_permanent) {
      // DAG-transition hardening: stale-OP sweep before the switch (§3.3's
      // in-flight A:B hazard). Modeled as an extra step that prunes
      // pending OPs targeting dead switches.
      scheduler.step(nadir::Step{
          "StaleSweep",
          {"PendingOps", "SwitchHealth"},
          {"PendingOps"},
          [](StepContext& ctx) {
            ctx.await(false);  // hardening logic engaged only on transition
          }});
    }
    spec.process(std::move(scheduler));
  }

  // ---- Sequencer ---------------------------------------------------------------
  {
    nadir::Process sequencer("Sequencer");
    sequencer.step(nadir::Step{
        "SeqLoop",
        {"CurrentDag", "PendingOps", "InstalledIds", "OPQueue",
         "InstalledDags"},
        {"PendingOps", "OPQueue", "CurrentDag", "InstalledDags"},
        [](StepContext& ctx) {
          const Value& current = ctx.global("CurrentDag");
          ctx.await(!current.is_nil());
          if (ctx.blocked()) return;
          const Value& pending = ctx.global("PendingOps");
          const Value& installed = ctx.global("InstalledIds");
          // CHOOSE a schedulable OP (deterministic: least element first).
          for (const Value& op : pending.as_set()) {
            if (!preds_installed(current, installed, op.field("op").as_int())) {
              continue;
            }
            ctx.set_global("PendingOps", pending.set_erase(op));
            ctx.fifo_put("OPQueue", op);
            ctx.jump("SeqLoop");
            return;
          }
          // Nothing schedulable: certify if everything installed.
          if (pending.size() == 0) {
            bool all_done = true;
            for (const Value& op : current.field("v").as_set()) {
              if (!installed.set_contains(op.field("op"))) {
                all_done = false;
                break;
              }
            }
            if (all_done) {
              ctx.set_global(
                  "InstalledDags",
                  ctx.global("InstalledDags").set_insert(current.field("id")));
              ctx.set_global("CurrentDag", Value::nil());
              ctx.jump("SeqLoop");
              return;
            }
          }
          ctx.await(false);  // wait for more ACKs
        }});
    if (scenario.handle_switch_complete_permanent) {
      // Undo machinery for abandoned DAGs (the paper: "Sequencer complexity
      // increases significantly after verifying switch complete permanent
      // failures").
      sequencer.step(nadir::Step{
          "UndoDag",
          {"CurrentDag", "SwitchHealth", "PendingOps", "OPQueue"},
          {"PendingOps", "OPQueue", "CurrentDag"},
          [](StepContext& ctx) { ctx.await(false); }});
      sequencer.step(nadir::Step{
          "RescheduleAfterReset",
          {"InstalledIds", "PendingOps", "CurrentDag"},
          {"PendingOps"},
          [](StepContext& ctx) { ctx.await(false); }});
    }
    spec.process(std::move(sequencer));
  }

  // ---- Worker Pool ----------------------------------------------------------------
  {
    nadir::Process worker("WorkerPool");
    if (scenario.handle_cp_partial) {
      worker.step(nadir::Step{
          "StateRecovery",
          {"WorkerState", "SWInQ"},
          {"WorkerState", "SWInQ"},
          [batched](StepContext& ctx) {
            // WorkerPoolStateRecovery (Listing 3 line 4): a crash left an
            // in-progress OP (or batch)? Re-forward it (idempotent).
            const Value& slot = ctx.global("WorkerState");
            if (!slot.is_nil()) {
              if (batched) {
                for (const Value& op : slot.as_seq()) {
                  ctx.fifo_put("SWInQ", op);
                }
              } else {
                ctx.fifo_put("SWInQ", slot);
              }
              ctx.set_global("WorkerState", Value::nil());
            }
          }});
      worker.step(nadir::Step{
          "ControllerThread",
          {"OPQueue", "SWInQ", "WorkerState"},
          {"OPQueue", "SWInQ", "WorkerState"},
          [batched, batch_size](StepContext& ctx) {
            if (!batched) {
              Value op = ctx.fifo_peek("OPQueue");
              if (ctx.blocked()) return;
              ctx.set_global("WorkerState", op);     // record (Listing 3 l.7)
              ctx.fifo_put("SWInQ", op);             // ForwardOP
              ctx.set_global("WorkerState", Value::nil());
              ctx.fifo_ack_pop("OPQueue");           // RemoveOPFromQueue
              ctx.jump("ControllerThread");
              return;
            }
            // Batched drain: up to batch_size OPs per service step, each
            // under the same record -> forward -> ack-pop discipline, the
            // slot growing so a crash replays the whole held batch.
            Value first = ctx.fifo_peek("OPQueue");
            if (ctx.blocked()) return;
            (void)first;
            ValueVec held;
            for (int n = 0; n < batch_size; ++n) {
              if (ctx.fifo_empty("OPQueue")) break;
              Value op = ctx.fifo_peek("OPQueue");
              held.push_back(op);
              ctx.set_global("WorkerState", Value::seq(held));
              ctx.fifo_put("SWInQ", op);
              ctx.fifo_ack_pop("OPQueue");
            }
            ctx.set_global("WorkerState", Value::nil());
            ctx.jump("ControllerThread");
          }});
    } else {
      worker.step(nadir::Step{
          "ControllerThread",
          {"OPQueue", "SWInQ"},
          {"OPQueue", "SWInQ"},
          [batched, batch_size](StepContext& ctx) {
            Value op = ctx.fifo_get("OPQueue");
            if (ctx.blocked()) return;
            ctx.fifo_put("SWInQ", op);
            if (batched) {
              for (int n = 1; n < batch_size; ++n) {
                if (ctx.fifo_empty("OPQueue")) break;
                ctx.fifo_put("SWInQ", ctx.fifo_get("OPQueue"));
              }
            }
            ctx.jump("ControllerThread");
          }});
    }
    spec.process(std::move(worker));
  }

  // ---- AbstractSW -------------------------------------------------------------------
  {
    nadir::Process sw("AbstractSW");
    bool health_gated = scenario.handle_switch_partial ||
                        scenario.handle_switch_complete_transient;
    nadir::Step main_step;
    main_step.label = "SwitchSimpleProcess";
    main_step.reads = {"SWInQ", "SwTable", "FromSW"};
    main_step.writes = {"SWInQ", "SwTable", "FromSW"};
    if (health_gated) {
      main_step.reads.push_back("SwitchHealth");
    }
    main_step.fn = [health_gated, batched, batch_size](StepContext& ctx) {
      if (health_gated) {
        ctx.await(ctx.global("SwitchHealth").as_string() == "UP");
        if (ctx.blocked()) return;
      }
      Value op = ctx.fifo_get("SWInQ");
      if (ctx.blocked()) return;
      auto apply_op = [&ctx](const Value& one) {
        std::int64_t id = one.field("op").as_int();
        Value table = ctx.global("SwTable");
        if (id < 0) {
          // Deletion OP: remove the install whose id it negates.
          for (const Value& entry : table.as_set()) {
            if (entry.field("op").as_int() == -id) {
              table = table.set_erase(entry);
              break;
            }
          }
        } else {
          table = table.set_insert(one);
        }
        ctx.set_global("SwTable", table);
        return id;
      };
      if (!batched) {
        std::int64_t id = apply_op(op);
        ctx.fifo_put("FromSW", Value::integer(id));  // ACK after apply (A3)
        ctx.jump("SwitchSimpleProcess");
        return;
      }
      // Batched: apply up to batch_size queued OPs, then emit ONE
      // batch-ACK carrying every applied id (kBatchAck).
      ValueVec ids;
      ids.push_back(Value::integer(apply_op(op)));
      for (int n = 1; n < batch_size; ++n) {
        if (ctx.fifo_empty("SWInQ")) break;
        ids.push_back(Value::integer(apply_op(ctx.fifo_get("SWInQ"))));
      }
      ctx.fifo_put("FromSW", Value::seq(ids));
      ctx.jump("SwitchSimpleProcess");
    };
    sw.step(std::move(main_step));
    spec.process(std::move(sw));

    if (health_gated) {
      // Unfair failure/recovery processes (Listing 2): guarded by a budget
      // so exploration terminates.
      nadir::Process failure("SwFailure", /*fair=*/false);
      bool complete = scenario.handle_switch_complete_transient;
      failure.step(nadir::Step{
          "SwitchFailureProcess",
          {"SwitchHealth", "FailureBudget", "SwTable", "SWInQ",
           "HealthEvents"},
          {"SwitchHealth", "FailureBudget", "SwTable", "SWInQ",
           "HealthEvents"},
          [complete](StepContext& ctx) {
            ctx.await(ctx.global("SwitchHealth").as_string() == "UP" &&
                      ctx.global("FailureBudget").as_int() > 0);
            if (ctx.blocked()) return;
            ctx.set_global("FailureBudget",
                           Value::integer(
                               ctx.global("FailureBudget").as_int() - 1));
            ctx.set_global("SwitchHealth", Value::string("DOWN"));
            if (complete) {
              ctx.set_global("SwTable", Value::set({}));   // TCAM lost
              ctx.set_global("SWInQ", Value::seq({}));     // requests lost
            }
            ctx.fifo_put("HealthEvents", Value::string("down"));
            ctx.jump("SwitchFailureProcess");
          }});
      spec.process(std::move(failure));

      nadir::Process recovery("SwRecovery", /*fair=*/false);
      recovery.step(nadir::Step{
          "SwitchResolveFailureProcess",
          {"SwitchHealth", "HealthEvents"},
          {"SwitchHealth", "HealthEvents"},
          [](StepContext& ctx) {
            ctx.await(ctx.global("SwitchHealth").as_string() == "DOWN");
            if (ctx.blocked()) return;
            ctx.set_global("SwitchHealth", Value::string("UP"));
            ctx.fifo_put("HealthEvents", Value::string("up"));
            ctx.jump("SwitchResolveFailureProcess");
          }});
      spec.process(std::move(recovery));
    }
  }

  // ---- Monitoring Server -------------------------------------------------------------
  {
    nadir::Process monitoring("MonitoringServer");
    nadir::Step ack_step;
    ack_step.label = "ProcessACK";
    ack_step.reads = {"FromSW", "InstalledIds"};
    ack_step.writes = {"FromSW", "InstalledIds"};
    bool flow_tracking = scenario.handle_switch_complete_transient;
    if (flow_tracking) {
      ack_step.reads.push_back("FlowAcks");
      ack_step.writes.push_back("FlowAcks");
    }
    ack_step.fn = [flow_tracking, batched](StepContext& ctx) {
      Value ack = ctx.fifo_get("FromSW");
      if (ctx.blocked()) return;
      auto commit_one = [&ctx, flow_tracking](const Value& id) {
        ctx.set_global("InstalledIds",
                       ctx.global("InstalledIds").set_insert(id));
        if (flow_tracking) {
          // Flow-granularity ACK bookkeeping (§D.2: complete-transient
          // failures force the Monitoring Server to track actions, not
          // just OPs).
          ctx.set_global("FlowAcks", ctx.global("FlowAcks").set_insert(id));
        }
      };
      if (batched) {
        // Batch-ACK: ONE atomic step commits every id — the spec-level
        // image of Nib::commit_ack_batch's single transaction.
        for (const Value& id : ack.as_seq()) commit_one(id);
      } else {
        commit_one(ack);
      }
      ctx.jump("ProcessACK");
    };
    monitoring.step(std::move(ack_step));
    if (flow_tracking) {
      // §D.2: "Monitoring Server needs to check acknowledgments at the
      // granularity of flows instead of OPs ... we not only need to keep
      // track of the OPs but also their actions." A reconciliation step
      // over the per-flow ledger, consumed by the Topo Event Handler's
      // cleanup decisions.
      monitoring.step(nadir::Step{
          "ReconcileFlowLedger",
          {"FlowAcks", "InstalledIds", "SwitchHealth"},
          {"FlowAcks"},
          [](StepContext& ctx) { ctx.await(false); }});
    }
    spec.process(std::move(monitoring));
  }

  // ---- Topo Event Handler -------------------------------------------------------------
  if (scenario.handle_switch_partial ||
      scenario.handle_switch_complete_transient) {
    nadir::Process topo("TopoEventHandler");
    bool cleanup = scenario.handle_switch_complete_transient;
    bool dr = scenario.directed_reconciliation;
    nadir::Step health_step;
    health_step.label = "HealthEvent";
    health_step.reads = {"HealthEvents", "SwitchHealth", "InstalledIds"};
    health_step.writes = {"HealthEvents", "InstalledIds"};
    if (cleanup) {
      health_step.reads.push_back("OPQueue");
      health_step.writes.push_back("OPQueue");
      // Complete-transient cleanup consults the flow-granularity ledger to
      // decide which post-recovery ACKs belong to pre-failure actions.
      health_step.reads.push_back("FlowAcks");
    }
    if (dr) {
      health_step.reads.push_back("DumpResult");
      health_step.writes.push_back("DumpResult");
      health_step.reads.push_back("SwTable");
    }
    health_step.fn = [cleanup, dr](StepContext& ctx) {
      Value event = ctx.fifo_get("HealthEvents");
      if (ctx.blocked()) return;
      if (event.as_string() == "up") {
        if (dr) {
          // Directed reconciliation: read the surviving table and adopt it.
          ctx.set_global("DumpResult", ctx.global("SwTable"));
        } else if (cleanup) {
          // NR: reset the controller's record of installs — OPs must be
          // re-proven by fresh ACKs after the wipe.
          ctx.set_global("InstalledIds", Value::set({}));
        }
      }
      ctx.jump("HealthEvent");
    };
    topo.step(std::move(health_step));
    if (dr) {
      topo.step(nadir::Step{
          "ApplyDiff",
          {"DumpResult", "InstalledIds"},
          {"DumpResult", "InstalledIds"},
          [](StepContext& ctx) {
            const Value& dump = ctx.global("DumpResult");
            ctx.await(!dump.is_nil());
            if (ctx.blocked()) return;
            Value installed = Value::set({});
            for (const Value& entry : dump.as_set()) {
              installed = installed.set_insert(entry.field("op"));
            }
            ctx.set_global("InstalledIds", installed);
            ctx.set_global("DumpResult", Value::nil());
            ctx.jump("ApplyDiff");
          }});
    }
    spec.process(std::move(topo));
  }

  return spec;
}

nadir::Spec compose_app_with_core(const nadir::Spec& app,
                                  const CoreSpecScenario& scenario,
                                  int num_switches) {
  nadir::Spec core = build_core_spec(scenario, num_switches);
  nadir::Spec composed("(" + app.name() + ")x(" + core.name() + ")");
  for (const nadir::VariableDecl& g : app.globals()) {
    composed.global(g.name, g.type, g.initial, g.persistent);
  }
  for (const nadir::VariableDecl& g : core.globals()) {
    if (composed.find_global(g.name) != nullptr) continue;  // shared queue
    composed.global(g.name, g.type, g.initial, g.persistent);
  }
  for (const nadir::Process& p : app.processes()) {
    if (p.name() == "AbstractCore") continue;  // replaced by the real core
    composed.process(p);
  }
  for (const nadir::Process& p : core.processes()) {
    composed.process(p);
  }
  return composed;
}

std::string check_core_installed_dags(const nadir::Env& env) {
  auto dags_it = env.globals.find("InstalledDags");
  auto table_it = env.globals.find("SwTable");
  if (dags_it == env.globals.end() || table_it == env.globals.end()) {
    return "";
  }
  // A switch failure legitimately wipes installed state after
  // certification (eventual consistency then demands re-installation,
  // which this bounded instance does not model end-to-end), so the
  // certified-implies-installed check applies to failure-free behaviours.
  auto budget_it = env.globals.find("FailureBudget");
  if (budget_it != env.globals.end() && budget_it->second.as_int() < 1) {
    return "";
  }
  auto health_it = env.globals.find("SwitchHealth");
  if (health_it != env.globals.end() &&
      health_it->second.as_string() != "UP") {
    return "";
  }
  // Certified DAGs must have their installs present (unless a later DAG
  // deleted them — this simple instance checks the single-DAG case).
  if (dags_it->second.size() == 0) return "";
  if (table_it->second.size() == 0) {
    return "certified DAG has no OPs installed on the switch";
  }
  return "";
}

}  // namespace zenith::mc
