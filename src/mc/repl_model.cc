#include "mc/repl_model.h"

#include <algorithm>
#include <array>
#include <sstream>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "mc/parallel_bfs.h"

namespace zenith::mc {

namespace {

// Packed replica-set state: ~16 bytes, trivially copyable — the engine
// moves millions of these through per-worker frontiers.
struct RState {
  std::array<std::uint8_t, kMaxReplReplicas> log{};  // durable length
  std::uint8_t alive = 0;  // bitmask; crashed replicas keep their logs
  std::int8_t leader = 0;  // -1 = no serving leader (awaiting election)
  std::uint8_t applied = 0;     // committed prefix applied to the NIB
  std::uint8_t appends_left = 0;
  std::uint8_t kills_left = 0;
  // Eventual stream (PR 10): submitted prefix + per-replica cursors. All
  // zero when ReplModelConfig::max_eventual_submits == 0.
  std::uint8_t esub = 0;
  std::array<std::uint8_t, kMaxReplReplicas> eseen{};
  std::uint8_t esubs_left = 0;
};

struct RAction {
  enum class Kind : std::uint8_t {
    kAppend,
    kReplicate,
    kCommit,
    kKillLeader,
    kElect,
    kEventualSubmit,
    kEventualDeliver,
  };
  Kind kind = Kind::kAppend;
  std::uint8_t subject = 0;  // follower / winner / cursor target, by kind

  std::string label() const {
    switch (kind) {
      case Kind::kAppend:
        return "append";
      case Kind::kReplicate:
        return "replicate(" + std::to_string(int(subject)) + ")";
      case Kind::kCommit:
        return "commit";
      case Kind::kKillLeader:
        return "kill-leader";
      case Kind::kElect:
        return "elect(" + std::to_string(int(subject)) + ")";
      case Kind::kEventualSubmit:
        return "eventual-submit";
      case Kind::kEventualDeliver:
        return "eventual-deliver(" + std::to_string(int(subject)) + ")";
    }
    return "?";
  }
};

int quorum(int n) { return n / 2 + 1; }

bool is_alive(const RState& s, int r) {
  return (s.alive >> r) & 1;
}

/// The largest log index a quorum of replicas durably holds (dead replicas
/// count: their disks survive the crash, mirroring Replica::log in the
/// simulator living through kill/revive).
int quorum_held(const RState& s, int replicas) {
  std::array<std::uint8_t, kMaxReplReplicas> sorted = s.log;
  std::sort(sorted.begin(), sorted.begin() + replicas,
            std::greater<std::uint8_t>());
  return sorted[static_cast<std::size_t>(quorum(replicas)) - 1];
}

// Leader completeness: a serving leader's durable log contains every
// NIB-applied entry. This is the property quorum commit + up-to-date
// election preserves, and exactly what commit-before-quorum breaks.
bool leader_incomplete(const RState& s) {
  return s.leader >= 0 && is_alive(s, s.leader) &&
         s.log[static_cast<std::size_t>(s.leader)] < s.applied;
}

/// Eventual-cursor soundness (PR 10): no replica's cursor runs ahead of the
/// submitted prefix — a cursor past the prefix would expose entries nobody
/// committed. Returns the offender, or -1.
int cursor_ahead(const RState& s) {
  for (int r = 0; r < kMaxReplReplicas; ++r) {
    if (s.eseen[static_cast<std::size_t>(r)] > s.esub) return r;
  }
  return -1;
}

bool violated(const RState& s) {
  return leader_incomplete(s) || cursor_ahead(s) >= 0;
}

std::string violation_message(const RState& s) {
  std::ostringstream msg;
  if (leader_incomplete(s)) {
    msg << "leader completeness violated: elected leader " << int(s.leader)
        << " holds " << int(s.log[static_cast<std::size_t>(s.leader)])
        << " entries but " << int(s.applied) << " are applied to the NIB";
  } else {
    int r = cursor_ahead(s);
    msg << "eventual cursor violated: replica " << r << " cursor "
        << int(s.eseen[static_cast<std::size_t>(r)])
        << " ahead of submitted prefix " << int(s.esub);
  }
  return msg.str();
}

/// Enumerates every transition of `s` in the model's canonical BFS order
/// (append, replicate ascending, commit, kill-leader, elect) — shared by
/// the exploration adapter and the replay oracle so they cannot drift.
/// `fn(action, next)` returns false to stop the enumeration.
template <typename Fn>
void for_each_transition(const ReplModelConfig& config, const RState& s,
                         Fn&& fn) {
  const bool leader_up = s.leader >= 0 && is_alive(s, s.leader);

  // eventual-submit: an install-only ACK joins the leader-independent
  // stream. Deliberately NOT gated on leader_up — availability while
  // leaderless is the property the adaptive mode buys, and the transition
  // being enabled here is what lets the checker exercise it.
  if (s.esubs_left > 0) {
    RState next = s;
    ++next.esub;
    --next.esubs_left;
    if (!fn(RAction{RAction::Kind::kEventualSubmit, 0}, next)) return;
  }
  // eventual-deliver(r): a live replica's cursor catches up to the
  // submitted prefix (one hop's worth — the implementation's delivery sets
  // the cursor to the prefix captured at send time).
  for (int r = 0; r < config.replicas; ++r) {
    std::size_t ri = static_cast<std::size_t>(r);
    if (!is_alive(s, r) || s.eseen[ri] >= s.esub) continue;
    RState next = s;
    next.eseen[ri] = config.bug_eventual_over_deliver
                         ? static_cast<std::uint8_t>(next.esub + 1)
                         : next.esub;
    if (!fn(RAction{RAction::Kind::kEventualDeliver,
                    static_cast<std::uint8_t>(r)},
            next)) {
      return;
    }
  }

  // append: client submission reaches the serving leader's log; with the
  // bug it is applied immediately, before replication.
  if (leader_up && s.appends_left > 0) {
    RState next = s;
    ++next.log[static_cast<std::size_t>(next.leader)];
    --next.appends_left;
    if (config.bug_commit_before_quorum) {
      next.applied = next.log[static_cast<std::size_t>(next.leader)];
    }
    if (!fn(RAction{RAction::Kind::kAppend, 0}, next)) return;
  }
  if (leader_up) {
    const int leader_log = s.log[static_cast<std::size_t>(s.leader)];
    // replicate(f): a follower catches up to the leader's log — the whole
    // remainder in one step, or one entry per step (one transition per
    // replication RPC) under stepwise_replication.
    for (int f = 0; f < config.replicas; ++f) {
      std::size_t fi = static_cast<std::size_t>(f);
      if (f == s.leader || !is_alive(s, f) || s.log[fi] >= leader_log) {
        continue;
      }
      RState next = s;
      if (config.stepwise_replication) {
        ++next.log[fi];
      } else {
        next.log[fi] = static_cast<std::uint8_t>(leader_log);
      }
      if (!fn(RAction{RAction::Kind::kReplicate,
                      static_cast<std::uint8_t>(f)},
              next)) {
        return;
      }
    }
    // commit: apply the quorum-held prefix.
    if (quorum_held(s, config.replicas) > s.applied) {
      RState next = s;
      next.applied =
          static_cast<std::uint8_t>(quorum_held(next, config.replicas));
      if (!fn(RAction{RAction::Kind::kCommit, 0}, next)) return;
    }
    // kill-leader: the serving leader crashes (durable log survives).
    if (s.kills_left > 0) {
      RState next = s;
      next.alive = static_cast<std::uint8_t>(
          next.alive & ~(1u << next.leader));
      next.leader = -1;
      --next.kills_left;
      if (!fn(RAction{RAction::Kind::kKillLeader, 0}, next)) return;
    }
  } else if (s.leader < 0) {
    // elect: among the live replicas (requires a quorum of them, matching
    // Shard::maybe_elect) the most up-to-date wins; live logs longer than
    // the winner's would hold uncommitted entries the new leader
    // overwrites, so they truncate to the winner's length.
    int live = 0;
    int winner = -1;
    for (int r = 0; r < config.replicas; ++r) {
      std::size_t ri = static_cast<std::size_t>(r);
      if (!is_alive(s, r)) continue;
      ++live;
      if (winner < 0 || s.log[ri] > s.log[static_cast<std::size_t>(winner)]) {
        winner = r;
      }
    }
    if (live >= quorum(config.replicas) && winner >= 0) {
      RState next = s;
      next.leader = static_cast<std::int8_t>(winner);
      const std::uint8_t winner_log =
          next.log[static_cast<std::size_t>(winner)];
      for (int r = 0; r < config.replicas; ++r) {
        std::size_t ri = static_cast<std::size_t>(r);
        if (is_alive(next, r) && next.log[ri] > winner_log) {
          next.log[ri] = winner_log;
        }
      }
      if (!fn(RAction{RAction::Kind::kElect, static_cast<std::uint8_t>(winner)},
              next)) {
        return;
      }
    }
  }
}

RState initial_state(const ReplModelConfig& config) {
  RState init;
  init.alive =
      static_cast<std::uint8_t>((1u << config.replicas) - 1u);
  init.appends_left = static_cast<std::uint8_t>(config.max_appends);
  init.kills_left = static_cast<std::uint8_t>(config.max_kills);
  init.esubs_left = static_cast<std::uint8_t>(config.max_eventual_submits);
  return init;
}

struct ReplAdapter {
  using State = RState;
  using Action = RAction;

  const ReplModelConfig* config;

  State initial() const { return initial_state(*config); }

  std::pair<std::uint64_t, std::uint64_t> fingerprint(const State& s) const {
    std::array<std::uint8_t, 2 * kMaxReplReplicas + 7> bytes;
    std::size_t len = 0;
    for (int r = 0; r < config->replicas; ++r) {
      bytes[len++] = s.log[static_cast<std::size_t>(r)];
    }
    bytes[len++] = s.alive;
    bytes[len++] = static_cast<std::uint8_t>(s.leader);
    bytes[len++] = s.applied;
    bytes[len++] = s.appends_left;
    bytes[len++] = s.kills_left;
    // Folded only when the eventual stream is configured, so the
    // fingerprints of pre-PR-10 configurations stay byte-identical (MC
    // golden cells).
    if (config->max_eventual_submits > 0) {
      bytes[len++] = s.esub;
      bytes[len++] = s.esubs_left;
      for (int r = 0; r < config->replicas; ++r) {
        bytes[len++] = s.eseen[static_cast<std::size_t>(r)];
      }
    }
    std::span<const std::uint8_t> span(bytes.data(), len);
    return {fnv1a(span, 0xcbf29ce484222325ull),
            fnv1a(span, 0x9e3779b97f4a7c15ull)};
  }

  std::string visit(const State&, bool&) const { return {}; }

  template <typename Sink>
  std::string expand(const State& s, Sink& sink) const {
    for_each_transition(*config, s, [&](const RAction& action, RState next) {
      std::string violation;
      if (violated(next)) violation = violation_message(next);
      return sink.transition(action, std::move(next), violation);
    });
    return {};
  }
};

}  // namespace

ReplModelResult check_repl_model(const ReplModelConfig& config) {
  ParallelBfsOptions bfs;
  bfs.max_states = config.max_states;
  bfs.time_limit_seconds = config.time_limit_seconds;
  bfs.record_traces = true;
  bfs.threads = config.threads;
  bfs.disk_store_path = config.disk_store_path;

  ReplAdapter adapter{&config};
  ParallelBfsResult<RAction> bfs_result = parallel_bfs(adapter, bfs);

  ReplModelResult result;
  result.violation_found = !bfs_result.ok;
  result.states_explored = bfs_result.distinct_states;
  result.violation = std::move(bfs_result.violation);
  result.capped = bfs_result.capped;
  result.transitions = bfs_result.transitions;
  result.diameter = bfs_result.diameter;
  result.seconds = bfs_result.seconds;
  result.threads_used = bfs_result.threads_used;
  std::ostringstream joined;
  for (std::size_t i = 0; i < bfs_result.trace.size(); ++i) {
    if (i > 0) joined << " -> ";
    joined << bfs_result.trace[i].label();
  }
  result.counterexample = joined.str();
  return result;
}

std::string replay_repl_counterexample(const ReplModelConfig& config,
                                       const std::string& counterexample) {
  std::vector<std::string> tokens;
  std::size_t at = 0;
  while (at <= counterexample.size()) {
    std::size_t sep = counterexample.find(" -> ", at);
    if (sep == std::string::npos) {
      if (at < counterexample.size()) {
        tokens.push_back(counterexample.substr(at));
      }
      break;
    }
    tokens.push_back(counterexample.substr(at, sep - at));
    at = sep + 4;
  }

  RState state = initial_state(config);
  for (const std::string& token : tokens) {
    bool found = false;
    RState after;
    for_each_transition(config, state,
                        [&](const RAction& action, RState next) {
                          if (action.label() == token) {
                            found = true;
                            after = next;
                            return false;
                          }
                          return true;
                        });
    if (!found) return {};  // not executable here: the trace proves nothing
    state = after;
  }
  if (violated(state)) return violation_message(state);
  return {};
}

}  // namespace zenith::mc
