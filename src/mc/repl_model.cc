#include "mc/repl_model.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

namespace zenith::mc {

namespace {

struct State {
  std::vector<int> log;     // durable log length per replica
  std::vector<bool> alive;  // crashed replicas keep their durable log
  int leader = 0;           // -1 = no serving leader (awaiting election)
  int applied = 0;          // committed prefix applied to the NIB
  int appends_left = 0;
  int kills_left = 0;

  std::string key() const {
    std::ostringstream out;
    for (std::size_t i = 0; i < log.size(); ++i) {
      out << log[i] << (alive[i] ? "u" : "d");
    }
    out << "|" << leader << "|" << applied << "|" << appends_left << "|"
        << kills_left;
    return out.str();
  }
};

int quorum(int n) { return n / 2 + 1; }

/// The largest log index a quorum of replicas durably holds (dead replicas
/// count: their disks survive the crash, mirroring Replica::log in the
/// simulator living through kill/revive).
int quorum_held(const State& s) {
  std::vector<int> sorted = s.log;
  std::sort(sorted.begin(), sorted.end(), std::greater<int>());
  return sorted[static_cast<std::size_t>(quorum(static_cast<int>(sorted.size()))) - 1];
}

}  // namespace

ReplModelResult check_repl_model(const ReplModelConfig& config) {
  ReplModelResult result;

  State init;
  init.log.assign(static_cast<std::size_t>(config.replicas), 0);
  init.alive.assign(static_cast<std::size_t>(config.replicas), true);
  init.appends_left = config.max_appends;
  init.kills_left = config.max_kills;

  // key -> (parent key, action that reached it); doubles as the visited set.
  std::map<std::string, std::pair<std::string, std::string>> parent;
  std::deque<State> frontier;
  parent[init.key()] = {"", ""};
  frontier.push_back(init);

  auto reconstruct = [&](const std::string& key) {
    std::vector<std::string> actions;
    std::string at = key;
    while (true) {
      const auto& [from, action] = parent.at(at);
      if (action.empty()) break;
      actions.push_back(action);
      at = from;
    }
    std::reverse(actions.begin(), actions.end());
    std::ostringstream out;
    for (std::size_t i = 0; i < actions.size(); ++i) {
      if (i > 0) out << " -> ";
      out << actions[i];
    }
    return out.str();
  };

  // Leader completeness: a serving leader's durable log contains every
  // NIB-applied entry. This is the property quorum commit + up-to-date
  // election preserves, and exactly what commit-before-quorum breaks.
  auto violated = [](const State& s) {
    return s.leader >= 0 && s.alive[static_cast<std::size_t>(s.leader)] &&
           s.log[static_cast<std::size_t>(s.leader)] < s.applied;
  };

  auto push = [&](State next, const State& from, std::string action) {
    std::string k = next.key();
    if (parent.count(k) > 0) return;
    parent[k] = {from.key(), std::move(action)};
    if (!result.violation_found && violated(next)) {
      result.violation_found = true;
      std::ostringstream msg;
      msg << "leader completeness violated: elected leader " << next.leader
          << " holds " << next.log[static_cast<std::size_t>(next.leader)]
          << " entries but " << next.applied
          << " are applied to the NIB";
      result.violation = msg.str();
      result.counterexample = reconstruct(k);
    }
    frontier.push_back(std::move(next));
  };

  while (!frontier.empty() && !result.violation_found) {
    State s = frontier.front();
    frontier.pop_front();
    ++result.states_explored;
    const bool leader_up =
        s.leader >= 0 && s.alive[static_cast<std::size_t>(s.leader)];

    // append: client submission reaches the serving leader's log; with the
    // bug it is applied immediately, before replication.
    if (leader_up && s.appends_left > 0) {
      State next = s;
      ++next.log[static_cast<std::size_t>(next.leader)];
      --next.appends_left;
      if (config.bug_commit_before_quorum) {
        next.applied = next.log[static_cast<std::size_t>(next.leader)];
      }
      push(std::move(next), s, "append");
    }
    if (leader_up) {
      const int leader_log = s.log[static_cast<std::size_t>(s.leader)];
      // replicate(f): one follower catches up to the leader's log.
      for (int f = 0; f < config.replicas; ++f) {
        std::size_t fi = static_cast<std::size_t>(f);
        if (f == s.leader || !s.alive[fi] || s.log[fi] >= leader_log) continue;
        State next = s;
        next.log[fi] = leader_log;
        push(std::move(next), s, "replicate(" + std::to_string(f) + ")");
      }
      // commit: apply the quorum-held prefix.
      if (quorum_held(s) > s.applied) {
        State next = s;
        next.applied = quorum_held(next);
        push(std::move(next), s, "commit");
      }
      // kill-leader: the serving leader crashes (durable log survives).
      if (s.kills_left > 0) {
        State next = s;
        next.alive[static_cast<std::size_t>(next.leader)] = false;
        next.leader = -1;
        --next.kills_left;
        push(std::move(next), s, "kill-leader");
      }
    } else if (s.leader < 0) {
      // elect: among the live replicas (requires a quorum of them, matching
      // Shard::maybe_elect) the most up-to-date wins; live logs longer than
      // the winner's would hold uncommitted entries the new leader
      // overwrites, so they truncate to the winner's length.
      int live = 0;
      int winner = -1;
      for (int r = 0; r < config.replicas; ++r) {
        std::size_t ri = static_cast<std::size_t>(r);
        if (!s.alive[ri]) continue;
        ++live;
        if (winner < 0 || s.log[ri] > s.log[static_cast<std::size_t>(winner)]) {
          winner = r;
        }
      }
      if (live >= quorum(config.replicas) && winner >= 0) {
        State next = s;
        next.leader = winner;
        const int winner_log = next.log[static_cast<std::size_t>(winner)];
        for (int r = 0; r < config.replicas; ++r) {
          std::size_t ri = static_cast<std::size_t>(r);
          if (next.alive[ri] && next.log[ri] > winner_log) {
            next.log[ri] = winner_log;
          }
        }
        push(std::move(next), s, "elect(" + std::to_string(winner) + ")");
      }
    }
  }
  return result;
}

}  // namespace zenith::mc
