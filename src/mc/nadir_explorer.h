// Explicit-state exploration over NADIR specs (the app-verification engine
// of §4/§6.3): enumerates process interleavings of a Spec, checking a
// user-supplied invariant on every state and an optional quiescence
// condition on terminal states. TypeOK (the NADIR annotations) is enforced
// on every transition.
//
// Since PR 9 the exploration runs on the shared work-stealing parallel BFS
// engine (parallel_bfs.h), with the same determinism contract as
// mc::check: threads == 1 reproduces the old serial explorer exactly, and
// clean uncapped runs report identical distinct_states / transitions /
// diameter at every thread count.
#pragma once

#include <functional>
#include <string>

#include "nadir/interpreter.h"
#include "nadir/spec.h"

namespace zenith::mc {

struct NadirCheckerOptions {
  std::size_t max_states = 1'000'000;
  double time_limit_seconds = 300.0;
  /// Returns "" when the state is fine, else a violation description.
  std::function<std::string(const nadir::Env&)> invariant;
  /// Checked on states where every process is blocked or done.
  std::function<std::string(const nadir::Env&)> quiescence;
  /// Crash/restart exploration: processes whose crash (pc/local reset) the
  /// checker may inject, at most `max_crashes` times total.
  std::vector<std::string> crashable;
  std::size_t max_crashes = 0;
  /// Exploration workers. 1 (default) = the serial explorer, byte-identical
  /// to the pre-PR-9 results; 0 = default_bench_threads().
  std::size_t threads = 1;
  /// When non-empty: directory for the seen-set's mmap-backed spill store.
  std::string disk_store_path;
};

struct NadirCheckResult {
  bool ok = true;
  bool capped = false;
  std::string violation;
  std::size_t distinct_states = 0;
  std::size_t transitions = 0;
  std::size_t diameter = 0;
  double seconds = 0.0;
  std::size_t threads_used = 1;
};

NadirCheckResult explore(const nadir::Spec& spec,
                         NadirCheckerOptions options = {});

}  // namespace zenith::mc
