// Explicit-state exploration over NADIR specs (the app-verification engine
// of §4/§6.3): enumerates process interleavings of a Spec, checking a
// user-supplied invariant on every state and an optional quiescence
// condition on terminal states. TypeOK (the NADIR annotations) is enforced
// on every transition.
#pragma once

#include <functional>
#include <string>

#include "nadir/interpreter.h"
#include "nadir/spec.h"

namespace zenith::mc {

struct NadirCheckerOptions {
  std::size_t max_states = 1'000'000;
  double time_limit_seconds = 300.0;
  /// Returns "" when the state is fine, else a violation description.
  std::function<std::string(const nadir::Env&)> invariant;
  /// Checked on states where every process is blocked or done.
  std::function<std::string(const nadir::Env&)> quiescence;
  /// Crash/restart exploration: processes whose crash (pc/local reset) the
  /// checker may inject, at most `max_crashes` times total.
  std::vector<std::string> crashable;
  std::size_t max_crashes = 0;
};

struct NadirCheckResult {
  bool ok = true;
  bool capped = false;
  std::string violation;
  std::size_t distinct_states = 0;
  std::size_t transitions = 0;
  std::size_t diameter = 0;
  double seconds = 0.0;
};

NadirCheckResult explore(const nadir::Spec& spec,
                         NadirCheckerOptions options = {});

}  // namespace zenith::mc
