// zenith_lockstep: the conformance gate's command-line face.
//
// Runs the lockstep checker over the scenario grid — {kdl, b4, fat-tree} x
// batch_size {1, 4, 16} x two fault schedules — and exits non-zero on the
// first divergence, printing the divergence messages and the shrunk
// reproducer trace. `--quick` trims the grid to one seed and batch sizes
// {1, 16} for the CI stage.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "mc/lockstep.h"

namespace {

using zenith::chaos::CampaignConfig;
using zenith::chaos::TopologyKind;
using zenith::mc::LockstepChecker;
using zenith::mc::LockstepConfig;
using zenith::mc::LockstepReport;

struct Cell {
  TopologyKind topology;
  std::size_t topology_size;
  std::size_t batch_size;
  std::uint64_t seed;
  bool crash_heavy;  // component/OFC-crash-weighted fault schedule
};

LockstepConfig cell_config(const Cell& cell) {
  LockstepConfig config;
  config.campaign.seed = cell.seed;
  config.campaign.topology = cell.topology;
  config.campaign.topology_size = cell.topology_size;
  config.campaign.core.batch_size = cell.batch_size;
  config.campaign.schedule.horizon = zenith::seconds(3);
  config.campaign.schedule.fault_count = 8;
  config.campaign.initial_flows = 4;
  config.phases = 3;
  if (cell.crash_heavy) {
    zenith::chaos::FaultWeights& w = config.campaign.schedule.weights;
    w.switch_complete_transient = 0.20;
    w.switch_partial_transient = 0.10;
    w.link_flap = 0.10;
    w.component_crash = 0.35;
    w.ofc_crash = 0.15;
    w.de_crash = 0.05;
    w.reply_burst_loss = 0.05;
  }
  // The model verdict is grid-wide identical per (batch_size, fault mix);
  // checking it once per cell would dominate runtime.
  config.check_model = false;
  return config;
}

const char* schedule_name(bool crash_heavy) {
  return crash_heavy ? "crash-heavy" : "default";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  struct Topo {
    TopologyKind kind;
    std::size_t size;
  };
  const std::vector<Topo> topologies = {
      {TopologyKind::kKdlLike, 16},
      {TopologyKind::kB4, 0},
      {TopologyKind::kFatTree, 4},
  };
  const std::vector<std::size_t> batch_sizes =
      quick ? std::vector<std::size_t>{1, 16}
            : std::vector<std::size_t>{1, 4, 16};
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{1} : std::vector<std::uint64_t>{1, 2};

  int divergences = 0;
  int cells = 0;
  for (const Topo& topo : topologies) {
    for (std::size_t batch_size : batch_sizes) {
      for (std::uint64_t seed : seeds) {
        for (bool crash_heavy : {false, true}) {
          Cell cell{topo.kind, topo.size, batch_size, seed, crash_heavy};
          LockstepChecker checker(cell_config(cell));
          LockstepReport report = checker.run();
          ++cells;
          std::size_t injected = 0;
          for (const auto& phase : report.phases) {
            injected += phase.events_injected;
          }
          std::printf("[%s bs=%zu seed=%llu %s] %s faults=%zu digest=%016llx\n",
                      zenith::chaos::to_string(topo.kind), batch_size,
                      static_cast<unsigned long long>(seed),
                      schedule_name(crash_heavy), report.summary().c_str(),
                      injected,
                      static_cast<unsigned long long>(report.report_digest()));
          if (!report.diverged) continue;
          ++divergences;
          for (const std::string& d : report.divergences) {
            std::printf("  divergence: %s\n", d.c_str());
          }
          LockstepChecker::DivergenceShrink shrunk =
              checker.shrink(checker.schedule());
          std::printf("  shrunk to %zu events (%zu oracle runs)\n%s\n",
                      shrunk.minimal.size(), shrunk.oracle_runs,
                      shrunk.trace.to_string().c_str());
          if (!shrunk.minimal_report.flight_recorder_dump.empty()) {
            std::printf("--- flight recorder ---\n%s\n",
                        shrunk.minimal_report.flight_recorder_dump.c_str());
          }
        }
      }
    }
  }

  std::printf("lockstep: %d/%d cells diverged\n", divergences, cells);
  return divergences == 0 ? 0 : 1;
}
