// Explicit-state model of one replicated-log shard (src/repl).
//
// The implementation's shard protocol is a lease-based Raft variant; this
// model strips it to the abstract replica set the safety argument is about:
// per-replica durable log lengths, a committed (NIB-applied) prefix, a
// serving leader, and crash/election transitions. Bounded BFS over all
// interleavings of {append, replicate, commit, kill-leader, elect} checks
// leader completeness — an elected leader's log must contain every entry
// already applied to the NIB. The commit-before-quorum bug knob (the same
// defect ReplConfig::bug_commit_before_quorum injects into the simulator)
// makes the model apply entries no quorum holds; the checker then finds the
// three-action counterexample (append, kill-leader, elect) that the chaos
// harness rediscovers at full scale and ddmin-shrinks.
//
// Since PR 9 the exploration runs on the shared work-stealing parallel BFS
// engine (parallel_bfs.h): states are packed (replica log lengths + an
// alive bitmask, ~16 bytes), the seen-set is the sharded fingerprint store,
// and `ReplModelConfig::threads` scales the search. The
// `stepwise_replication` knob models replication one entry per RPC instead
// of whole-log catch-up — the fidelity-increasing refinement that blows the
// space into the tens of millions of states for the Table 4 headline run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace zenith::mc {

inline constexpr int kMaxReplReplicas = 7;

struct ReplModelConfig {
  int replicas = 3;
  /// Client submissions available to the exploration (log grows this far).
  int max_appends = 2;
  /// Leader crashes available (each enables one election).
  int max_kills = 1;
  /// Inject the commit-before-quorum defect: an append is applied to the
  /// NIB immediately, before any follower holds it.
  bool bug_commit_before_quorum = false;
  /// Replicate one entry per step (one transition per replication RPC)
  /// instead of whole-log catch-up. Finer-grained interleavings — a much
  /// larger state space at the same bounds.
  bool stepwise_replication = false;

  // -- eventual stream (PR 10) ------------------------------------------------
  /// Leader-independent eventual-commit budget. Submissions are enabled
  /// even with NO serving leader — the availability property adaptive
  /// consistency buys — and per-replica cursor deliveries chase the
  /// submitted prefix. The checked invariant: a cursor never runs ahead of
  /// the prefix. 0 disables the stream (state space and fingerprints are
  /// then byte-identical to the pre-PR-10 model).
  int max_eventual_submits = 0;
  /// Deliberate defect: a delivery advances the replica's cursor one entry
  /// PAST the submitted prefix (the anti-entropy off-by-one). Makes the
  /// cursor invariant falsifiable.
  bool bug_eventual_over_deliver = false;

  // -- exploration knobs (PR 9) -----------------------------------------------
  /// Worker threads. 1 = serial (deterministic counterexample), 0 =
  /// default_bench_threads().
  std::size_t threads = 1;
  std::size_t max_states = 50'000'000;
  double time_limit_seconds = 300.0;
  /// Spill directory for the seen-set (see ShardedFingerprintSet).
  std::string disk_store_path;
};

struct ReplModelResult {
  bool violation_found = false;
  /// Distinct states discovered (pre-PR-9 this counted expanded states;
  /// the engine's BFS discovers every state it expands, so on complete
  /// verification runs the two agree).
  std::size_t states_explored = 0;
  /// First violated property, empty when none.
  std::string violation;
  /// " -> "-joined action sequence reaching the violating state (a minimal
  /// counterexample: BFS explores by depth).
  std::string counterexample;

  // -- engine statistics (PR 9) -----------------------------------------------
  bool capped = false;
  std::size_t transitions = 0;
  std::size_t diameter = 0;
  double seconds = 0.0;
  std::size_t threads_used = 1;
};

/// Exhaustively explores the bounded model and checks leader completeness
/// at every reachable state.
ReplModelResult check_repl_model(const ReplModelConfig& config);

/// Replays a " -> "-joined counterexample string against the model's
/// transition relation; returns the violation the final state exhibits, or
/// "" when the sequence is not executable / reaches no violating state.
/// This is the replay oracle for the counterexample-determinism tests: a
/// trace the parallel checker reports must reproduce under the model's own
/// apply semantics.
std::string replay_repl_counterexample(const ReplModelConfig& config,
                                       const std::string& counterexample);

}  // namespace zenith::mc
