// Explicit-state model of one replicated-log shard (src/repl).
//
// The implementation's shard protocol is a lease-based Raft variant; this
// model strips it to the abstract replica set the safety argument is about:
// per-replica durable log lengths, a committed (NIB-applied) prefix, a
// serving leader, and crash/election transitions. Bounded BFS over all
// interleavings of {append, replicate, commit, kill-leader, elect} checks
// leader completeness — an elected leader's log must contain every entry
// already applied to the NIB. The commit-before-quorum bug knob (the same
// defect ReplConfig::bug_commit_before_quorum injects into the simulator)
// makes the model apply entries no quorum holds; the checker then finds the
// three-action counterexample (append, kill-leader, elect) that the chaos
// harness rediscovers at full scale and ddmin-shrinks.
#pragma once

#include <cstddef>
#include <string>

namespace zenith::mc {

struct ReplModelConfig {
  int replicas = 3;
  /// Client submissions available to the exploration (log grows this far).
  int max_appends = 2;
  /// Leader crashes available (each enables one election).
  int max_kills = 1;
  /// Inject the commit-before-quorum defect: an append is applied to the
  /// NIB immediately, before any follower holds it.
  bool bug_commit_before_quorum = false;
};

struct ReplModelResult {
  bool violation_found = false;
  std::size_t states_explored = 0;
  /// First violated property, empty when none.
  std::string violation;
  /// " -> "-joined action sequence reaching the violating state (a minimal
  /// counterexample: BFS explores by depth).
  std::string counterexample;
};

/// Exhaustively explores the bounded model and checks leader completeness
/// at every reachable state.
ReplModelResult check_repl_model(const ReplModelConfig& config);

}  // namespace zenith::mc
