// A NADIR-IR specification of the ZENITH-core pipeline, used for:
//  * the §6.3 verification-time comparison — verifying an app against this
//    full multi-component core spec vs against the one-step AbstractCore
//    (the paper reports >100x; the ratio emerges from the product of
//    component state spaces);
//  * the Figure A.3 complexity study — per-component Henry-Kafura metrics
//    after verifying the spec under each failure scenario (the scenario
//    flags below add the handling steps that verification forced the
//    authors to add, growing length and information flow);
//  * Table A.1-style size reporting of our own specs.
//
// The instance is deliberately small (the paper's own model-checked
// instances are too); its components and queue topology mirror Figure A.4:
// DAGEventQueue -> DagScheduler -> Sequencer -> OPQueue -> WorkerPool ->
// SWInQ -> AbstractSW -> FromSW -> MonitoringServer, plus TopoEventHandler
// on the health path.
#pragma once

#include "nadir/spec.h"

namespace zenith::mc {

/// Which failure classes the spec handles (cumulative hardening mirrors
/// §D.2's six verification stages).
struct CoreSpecScenario {
  bool handle_switch_partial = false;     // (1)
  bool handle_cp_partial = false;         // (2)  [component crash recovery]
  bool handle_switch_complete_permanent = false;  // (4) [DAG transitions]
  bool handle_switch_complete_transient = false;  // (5) [cleanup pipeline]
  bool directed_reconciliation = false;   // (6) [ZENITH-DR tracking]

  /// Dispatch batch size (CoreConfig::batch_size). 1 = the classic per-OP
  /// pipeline, byte-identical spec to the pre-batching one. >1: the Worker
  /// Pool drains up to batch_size OPs per atomic step, the switch applies
  /// them and emits ONE batch-ACK (a sequence of OP ids), and the
  /// Monitoring Server commits that ACK as a single transaction.
  int batch_size = 1;

  static CoreSpecScenario stage(int n);  // 1..6 per Figure A.3's x-axis
  std::string name() const;
};

/// Builds the executable core spec. It consumes DAG records (the same
/// encoding the drain app produces) from "DAGEventQueue" and installs them
/// on model switches.
nadir::Spec build_core_spec(const CoreSpecScenario& scenario,
                            int num_switches = 2);

/// Composes an app spec with the full core: the app's AbstractCore process
/// is replaced by the core spec's processes (shared "DAGEventQueue").
nadir::Spec compose_app_with_core(const nadir::Spec& app,
                                  const CoreSpecScenario& scenario,
                                  int num_switches = 2);

/// End-to-end invariant for the composed spec: every DAG the core finished
/// has all its (non-deletion) OPs on the switches. Returns "" when OK.
std::string check_core_installed_dags(const nadir::Env& env);

}  // namespace zenith::mc
