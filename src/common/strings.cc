#include "common/strings.h"

#include <sstream>

namespace zenith {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string current;
  std::istringstream in(s);
  while (std::getline(in, current, delim)) out.push_back(current);
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace zenith
