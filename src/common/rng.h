// Deterministic random number generation.
//
// Every experiment in the reproduction is seeded; two runs with the same
// seed produce byte-identical results. We use xoshiro256** which is fast,
// has a tiny state, and supports cheap fork() for giving independent streams
// to sub-systems (failure injector, delay model, workload generator) so that
// adding draws in one subsystem does not perturb another.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace zenith {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 to spread the seed across the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Raw 64 random bits (xoshiro256**).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    assert(bound > 0);
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for the bounds used here (topology sizes, queue picks).
    return next_u64() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + next_double() * (hi - lo); }

  /// Exponential with the given mean (inter-arrival times, failure gaps).
  double exponential(double mean) {
    assert(mean > 0);
    double u = next_double();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Truncated normal via rejection; used for service-time jitter.
  double normal(double mean, double stddev) {
    // Box-Muller (one value per call keeps the stream simple to reason about).
    double u1 = next_double();
    double u2 = next_double();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    return mean + stddev * std::sqrt(-2.0 * std::log(u1)) *
                      std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  bool bernoulli(double p) { return next_double() < p; }

  /// Forks an independent stream. The child is seeded from the parent's
  /// output so sibling forks are decorrelated.
  Rng fork() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ull); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples one element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    assert(!v.empty());
    return v[next_below(v.size())];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace zenith
