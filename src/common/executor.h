// Shared thread-pool machinery (PR 8).
//
// Two layers:
//
//  - parallel_for / default_bench_threads: the one-shot fork-join used by
//    the chaos campaign runner and bench grids (moved here from
//    src/chaos/parallel.* so src/core can use the same machinery without a
//    core -> chaos dependency; chaos::parallel_for now delegates).
//
//  - PersistentExecutor: a long-lived pool for the sharded commit pipeline,
//    where a fork-join fires on every CommitPump service step and spawning
//    OS threads per step would dominate the work. Workers park on a condvar
//    between runs; run(n, fn) claims indexes from an atomic counter and
//    returns after all n complete (rethrowing the first body exception).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace zenith {

/// Worker-thread count for bench/test harnesses: $ZENITH_BENCH_THREADS when
/// set (clamped to [1, 64]), else min(4, hardware_concurrency), else 1.
std::size_t default_bench_threads();

/// Runs body(0) .. body(n-1) on up to `threads` OS threads. Indexes are
/// claimed from an atomic counter, so each runs exactly once; the call
/// returns after all complete. With threads <= 1 (or n <= 1) the bodies run
/// inline in the calling thread — no pool, identical observable behavior.
/// The first exception thrown by any body is rethrown in the caller after
/// the pool drains.
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& body);

class PersistentExecutor {
 public:
  /// Spawns `threads` workers immediately; they park until run() is called.
  /// threads == 0 is clamped to 1.
  explicit PersistentExecutor(std::size_t threads);
  ~PersistentExecutor();

  PersistentExecutor(const PersistentExecutor&) = delete;
  PersistentExecutor& operator=(const PersistentExecutor&) = delete;

  std::size_t threads() const { return workers_.size(); }

  /// Fork-join: body(0) .. body(n-1) across the pool, the caller's thread
  /// included. Blocks until every index has completed. Not reentrant.
  void run(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  void drain(const std::function<void(std::size_t)>& body);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  std::size_t job_size_ = 0;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::atomic<std::size_t> next_{0};
  std::size_t active_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace zenith
