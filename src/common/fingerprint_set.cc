#include "common/fingerprint_set.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace zenith {

namespace {

constexpr std::size_t kMinCapacity = 64;

std::size_t round_up_pow2(std::size_t v, std::size_t floor) {
  v = std::max(v, floor);
  return std::bit_ceil(v);
}

// The surrogate for the (0, 0) fingerprint: an arbitrary fixed constant so
// the empty-slot sentinel never collides with a stored state.
constexpr std::uint64_t kZeroLo = 0x5a5a5a5a00000001ull;
constexpr std::uint64_t kZeroHi = 0xa5a5a5a500000002ull;

std::atomic<std::uint64_t> g_store_counter{0};

}  // namespace

ShardedFingerprintSet::ShardedFingerprintSet(Options options) {
  std::size_t shards = round_up_pow2(options.shards, 1);
  shard_bits_ = std::countr_zero(shards);
  disk_dir_ = options.disk_store_path;
  disk_backed_ = !disk_dir_.empty();
  store_id_ = g_store_counter.fetch_add(1, std::memory_order_relaxed);
  if (disk_backed_) {
    struct stat st{};
    if (stat(disk_dir_.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
      throw std::runtime_error("ShardedFingerprintSet: disk_store_path '" +
                               disk_dir_ + "' is not a directory");
    }
  }
  std::size_t capacity =
      round_up_pow2(options.initial_capacity_per_shard, kMinCapacity);
  shards_.reserve(shards);
  generations_.assign(shards, 0);
  for (std::size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->region = make_region(capacity, i, 0);
    shards_.push_back(std::move(shard));
  }
}

ShardedFingerprintSet::~ShardedFingerprintSet() {
  for (auto& shard : shards_) release_region(shard->region);
}

ShardedFingerprintSet::Region ShardedFingerprintSet::make_region(
    std::size_t capacity, std::size_t shard_index,
    std::size_t generation) const {
  Region region;
  region.capacity = capacity;
  std::size_t bytes = capacity * 2 * sizeof(std::uint64_t);
  if (!disk_backed_) {
    region.heap.assign(capacity * 2, 0);
    region.slots = region.heap.data();
    return region;
  }
  region.file = disk_dir_ + "/fpset-" + std::to_string(store_id_) + "-shard" +
                std::to_string(shard_index) + "-gen" +
                std::to_string(generation) + ".bin";
  int fd = ::open(region.file.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0600);
  if (fd < 0) {
    throw std::runtime_error("ShardedFingerprintSet: open('" + region.file +
                             "') failed: " + std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    int err = errno;
    ::close(fd);
    ::unlink(region.file.c_str());
    throw std::runtime_error("ShardedFingerprintSet: ftruncate(" +
                             std::to_string(bytes) +
                             ") failed: " + std::strerror(err));
  }
  void* map =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    int err = errno;
    ::unlink(region.file.c_str());
    throw std::runtime_error("ShardedFingerprintSet: mmap(" +
                             std::to_string(bytes) +
                             ") failed: " + std::strerror(err));
  }
  region.slots = static_cast<std::uint64_t*>(map);
  region.mapped_bytes = bytes;
  // ftruncate zero-fills, matching the empty-slot sentinel.
  return region;
}

void ShardedFingerprintSet::release_region(Region& region) {
  if (region.mapped_bytes > 0) {
    ::munmap(region.slots, region.mapped_bytes);
    ::unlink(region.file.c_str());
    region.mapped_bytes = 0;
  }
  region.heap.clear();
  region.heap.shrink_to_fit();
  region.slots = nullptr;
  region.capacity = 0;
}

bool ShardedFingerprintSet::insert_into(Region& region, Fingerprint fp) {
  std::size_t mask = region.capacity - 1;
  std::size_t at = static_cast<std::size_t>(mix(fp.second)) & mask;
  for (;;) {
    std::uint64_t lo = region.slots[2 * at];
    std::uint64_t hi = region.slots[2 * at + 1];
    if (lo == 0 && hi == 0) {
      region.slots[2 * at] = fp.first;
      region.slots[2 * at + 1] = fp.second;
      return true;
    }
    if (lo == fp.first && hi == fp.second) return false;
    at = (at + 1) & mask;
  }
}

void ShardedFingerprintSet::grow(Shard& shard, std::size_t shard_index) {
  std::size_t generation = ++generations_[shard_index];
  Region bigger = make_region(shard.region.capacity * 2, shard_index,
                              generation);
  for (std::size_t i = 0; i < shard.region.capacity; ++i) {
    std::uint64_t lo = shard.region.slots[2 * i];
    std::uint64_t hi = shard.region.slots[2 * i + 1];
    if (lo == 0 && hi == 0) continue;
    insert_into(bigger, {lo, hi});
  }
  release_region(shard.region);
  shard.region = std::move(bigger);
}

bool ShardedFingerprintSet::insert(Fingerprint fp) {
  if (fp.first == 0 && fp.second == 0) fp = {kZeroLo, kZeroHi};
  std::size_t index =
      shard_bits_ == 0
          ? 0
          : static_cast<std::size_t>(mix(fp.first) >> (64 - shard_bits_));
  Shard& shard = *shards_[index];
  std::lock_guard<std::mutex> lock(shard.mu);
  // Grow past 70% load so probe chains stay short.
  if ((shard.count + 1) * 10 >= shard.region.capacity * 7) {
    grow(shard, index);
  }
  if (!insert_into(shard.region, fp)) return false;
  ++shard.count;
  return true;
}

std::size_t ShardedFingerprintSet::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->count;
  }
  return total;
}

std::size_t ShardedFingerprintSet::disk_bytes_mapped() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->region.mapped_bytes;
  }
  return total;
}

}  // namespace zenith
