// Statistics helpers for the evaluation harness: percentile summaries
// (median / p99 as reported throughout §6), CDFs (Figures 10a, 15a),
// histograms (Figure A.6), and throughput time series (Figures 14, 16, A.2).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"

namespace zenith {

/// Collects samples and answers percentile queries. Samples are kept raw;
/// experiments here are at most a few hundred thousand samples.
class Summary {
 public:
  void add(double sample);
  void add_all(const std::vector<double>& samples);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;
  /// Percentile with linear interpolation; p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }

  const std::vector<double>& samples() const { return samples_; }

  /// Empirical CDF as (value, fraction<=value) pairs, for plotting.
  std::vector<std::pair<double, double>> cdf() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-bin histogram (Figure A.6 trace-length distribution).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double sample);
  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  /// Counts every add(), including out-of-range samples.
  std::size_t total() const { return total_; }
  /// Samples below lo / at-or-above hi. These are counted explicitly instead
  /// of being silently clamped into the edge bins, so a mis-sized range shows
  /// up in the numbers rather than as a mysteriously fat first/last bin.
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  std::string to_string(int width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

/// Time series sampled on a fixed grid; used for throughput-vs-time figures.
class TimeSeries {
 public:
  explicit TimeSeries(SimTime step) : step_(step) {}

  /// Records `value` for the bucket containing `t` (last write wins).
  void record(SimTime t, double value);
  /// Accumulates into the bucket containing `t`.
  void accumulate(SimTime t, double value);

  SimTime step() const { return step_; }
  std::size_t size() const { return values_.size(); }
  double value_at(std::size_t i) const { return values_.at(i); }
  SimTime time_at(std::size_t i) const {
    return static_cast<SimTime>(i) * step_;
  }

  std::vector<std::pair<double, double>> as_seconds_series() const;

 private:
  SimTime step_;
  std::vector<double> values_;
};

/// Formats an ASCII table, used by the bench binaries to print the same rows
/// the paper's tables/figure captions report.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace zenith
