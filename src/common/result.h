// A minimal expected-style Result<T> used at module boundaries.
//
// The codebase follows the Core Guidelines preference for exceptions only at
// truly exceptional boundaries; routine recoverable failures (malformed DAG,
// unknown switch, queue closed) travel as Result values so callers must
// consider them.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace zenith {

/// Error payload: a stable code plus a human readable message.
struct Error {
  enum class Code {
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kFailedPrecondition,
    kUnavailable,
    kInternal,
  };

  Code code = Code::kInternal;
  std::string message;

  static Error invalid_argument(std::string msg) {
    return {Code::kInvalidArgument, std::move(msg)};
  }
  static Error not_found(std::string msg) {
    return {Code::kNotFound, std::move(msg)};
  }
  static Error already_exists(std::string msg) {
    return {Code::kAlreadyExists, std::move(msg)};
  }
  static Error failed_precondition(std::string msg) {
    return {Code::kFailedPrecondition, std::move(msg)};
  }
  static Error unavailable(std::string msg) {
    return {Code::kUnavailable, std::move(msg)};
  }
  static Error internal(std::string msg) {
    return {Code::kInternal, std::move(msg)};
  }
};

/// Result<T>: either a value or an Error. Result<void> carries only status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}       // NOLINT(implicit)
  Result(Error error) : data_(std::move(error)) {}   // NOLINT(implicit)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  /// Returns the value or a fallback when in error state.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(implicit)

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

  static Result success() { return Result(); }

 private:
  std::optional<Error> error_;
};

using Status = Result<void>;

}  // namespace zenith
