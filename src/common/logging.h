// Tiny leveled logger.
//
// The simulator and controllers log at TRACE level during debugging; the
// benchmark harness raises the threshold to WARN so timing numbers are not
// polluted by I/O. The logger is intentionally not thread-safe beyond what
// stdio gives us: the simulation kernel is single-threaded by design
// (determinism), and worker "concurrency" is logical, not OS threads.
#pragma once

#include <cstdio>
#include <functional>
#include <optional>
#include <string>

namespace zenith {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Parses a level name as accepted by the ZENITH_LOG_LEVEL environment
/// variable: trace|debug|info|warn|warning|error|off, case-insensitive.
std::optional<LogLevel> parse_log_level(const std::string& name);

class Logger {
 public:
  static Logger& instance();

  /// Receives every emitted record in place of the default stderr printer.
  using Sink = std::function<void(LogLevel level, const char* file, int line,
                                  const std::string& message)>;

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Replaces the output sink; an empty function restores the default
  /// stderr printer. Tests and benches use this to capture or silence log
  /// output without recompiling.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  void log(LogLevel level, const char* file, int line, std::string message);

 private:
  Logger();  // reads ZENITH_LOG_LEVEL once at startup

  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

std::string log_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace zenith

#define ZLOG(level, ...)                                                     \
  do {                                                                       \
    if (::zenith::Logger::instance().enabled(level)) {                       \
      ::zenith::Logger::instance().log(level, __FILE__, __LINE__,            \
                                       ::zenith::log_format(__VA_ARGS__));   \
    }                                                                        \
  } while (0)

#define ZLOG_TRACE(...) ZLOG(::zenith::LogLevel::kTrace, __VA_ARGS__)
#define ZLOG_DEBUG(...) ZLOG(::zenith::LogLevel::kDebug, __VA_ARGS__)
#define ZLOG_INFO(...) ZLOG(::zenith::LogLevel::kInfo, __VA_ARGS__)
#define ZLOG_WARN(...) ZLOG(::zenith::LogLevel::kWarn, __VA_ARGS__)
#define ZLOG_ERROR(...) ZLOG(::zenith::LogLevel::kError, __VA_ARGS__)
