// MpscQueue: an unbounded lock-free multi-producer / single-consumer queue
// (Vyukov's intrusive algorithm: producers contend only on one atomic
// exchange of the tail, the consumer walks the linked list).
//
// The stage queue of the sharded commit pipeline (PR 8): each NIB shard has
// one, fed by that shard's Monitoring Server instance and drained by the
// CommitPump. On the simulator thread both ends are sequential, so the
// lock-free path is exercised for real only by queue_test's producer-swarm
// stress under TSan — but the structure is the honest production shape: a
// socket-per-switch deployment would have many reply threads feeding one
// committer.
//
// Progress note (inherent to the algorithm): between a producer's tail
// exchange and its next-pointer store, try_pop on the partially linked node
// reports empty. Producers are never blocked; the consumer simply retries.
// With a single thread on both ends the window cannot be observed.
#pragma once

#include <atomic>
#include <optional>
#include <utility>

namespace zenith {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_ = stub;
    tail_.store(stub, std::memory_order_relaxed);
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  ~MpscQueue() {
    clear();
    delete head_;  // the remaining stub
  }

  /// Any thread.
  void push(T value) {
    Node* node = new Node(std::move(value));
    Node* prev = tail_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Consumer thread only.
  std::optional<T> try_pop() {
    Node* head = head_;
    Node* next = head->next.load(std::memory_order_acquire);
    if (next == nullptr) return std::nullopt;
    std::optional<T> out(std::move(next->value));
    head_ = next;
    delete head;
    return out;
  }

  /// Consumer-side emptiness check (racy across threads by nature; exact
  /// when both ends run on one thread, as in the simulator).
  bool empty() const {
    return head_->next.load(std::memory_order_acquire) == nullptr;
  }

  /// Consumer thread only: drops everything currently linked (used when an
  /// OFC instance dies — its pending commit jobs are volatile state).
  void clear() {
    while (try_pop()) {
    }
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  Node* head_;  // consumer end (always points at a consumed stub)
  alignas(64) std::atomic<Node*> tail_;
};

}  // namespace zenith
