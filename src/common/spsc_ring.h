// SpscRing: a bounded lock-free single-producer / single-consumer ring.
//
// The per-shard NIB-event channel of the sharded hot path (PR 8): the NIB
// publishes a shard's events into that shard's ring and the shard's NIB
// Event Handler drains it. Outside a parallel commit section both ends run
// on the simulator thread (the lock-free discipline is then trivially
// correct); inside a parallel commit section each shard's ring has exactly
// one producer — the pool thread applying that shard's commit job — and no
// consumer (the simulator thread is blocked on the join), which is exactly
// the SPSC contract. queue_test exercises the concurrent case directly with
// a real producer/consumer thread pair under TSan.
//
// Capacity is a power of two and grows on demand — but grow() is only legal
// when no concurrent access is possible (in practice: the simulator thread,
// which is both producer and consumer outside parallel sections). Parallel
// sections never need it: a commit section pushes at most one coalesced
// event per shard.
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

namespace zenith {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity = 1024)
      : buffer_(round_up_pow2(capacity)), mask_(buffer_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when the ring is full (caller may grow()
  /// if it can rule out concurrent access, or retry later).
  bool try_push(T item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= buffer_.size()) return false;
    buffer_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.
  std::optional<T> try_pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return std::nullopt;
    std::optional<T> out(std::move(buffer_[head & mask_]));
    head_.store(head + 1, std::memory_order_release);
    return out;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  std::size_t size() const {
    // Snapshot head BEFORE tail: the two loads are not atomic together, and
    // a consumer pop between them would make `tail - head` underflow to
    // ~2^64 if tail were read first. With head read first the difference
    // never goes negative (tail only grows, and tail >= head held when head
    // was read) — but a pop+push pair landing between the loads can still
    // push the later tail read past head+capacity, so clamp to capacity:
    // every snapshot is then a plausible occupancy.
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t diff = tail - head;
    return diff < buffer_.size() ? diff : buffer_.size();
  }

  std::size_t capacity() const { return buffer_.size(); }

  /// Doubles the capacity, preserving FIFO order. NOT thread-safe: callable
  /// only when producer and consumer are the same thread (the simulator
  /// thread outside parallel commit sections).
  void grow() {
    std::vector<T> bigger(buffer_.size() * 2);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t count = 0;
    for (std::size_t i = head; i != tail; ++i) {
      bigger[count++] = std::move(buffer_[i & mask_]);
    }
    buffer_ = std::move(bigger);
    mask_ = buffer_.size() - 1;
    head_.store(0, std::memory_order_relaxed);
    tail_.store(count, std::memory_order_relaxed);
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p < 2 ? 2 : p;
  }

  std::vector<T> buffer_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
};

}  // namespace zenith
