// Small string helpers shared by the harness and bench printers.
#pragma once

#include <string>
#include <vector>

namespace zenith {

std::vector<std::string> split(const std::string& s, char delim);
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);
bool starts_with(const std::string& s, const std::string& prefix);

}  // namespace zenith
