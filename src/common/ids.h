// Strong identifier types shared across the ZENITH reproduction.
//
// Every subsystem (topology, DAG engine, NIB, data plane) refers to entities
// by small integer ids. Wrapping them in distinct types prevents the classic
// "passed a switch id where an OP id was expected" family of bugs while
// keeping the ids trivially copyable and hashable.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace zenith {

/// Simulated time in microseconds. Signed so that deltas are natural.
using SimTime = std::int64_t;

/// Converts seconds (as written in the paper: "30s reconciliation period")
/// into the simulator's microsecond clock.
constexpr SimTime seconds(double s) { return static_cast<SimTime>(s * 1e6); }
constexpr SimTime millis(double ms) { return static_cast<SimTime>(ms * 1e3); }
constexpr SimTime micros(std::int64_t us) { return us; }

/// Converts a simulator timestamp back to (floating point) seconds.
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e6; }

constexpr SimTime kSimTimeNever = std::numeric_limits<SimTime>::max();

namespace detail {

/// CRTP-free strong typedef over an integer. Tag makes each instantiation a
/// distinct type. Comparisons and hashing work out of the box.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  constexpr Rep value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  static constexpr StrongId invalid() { return StrongId(); }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

 private:
  static constexpr Rep kInvalid = std::numeric_limits<Rep>::max();
  Rep value_ = kInvalid;
};

}  // namespace detail

struct SwitchIdTag {};
struct PortIdTag {};
struct LinkIdTag {};
struct OpIdTag {};
struct DagIdTag {};
struct FlowIdTag {};
struct RuleIdTag {};
struct WorkerIdTag {};
struct AppIdTag {};

/// Identifies a switch in the topology.
using SwitchId = detail::StrongId<SwitchIdTag>;
/// Identifies a port on a switch.
using PortId = detail::StrongId<PortIdTag>;
/// Identifies a (directed) link between two switch ports.
using LinkId = detail::StrongId<LinkIdTag>;
/// Identifies a single protocol-agnostic operation (OP) in a DAG.
using OpId = detail::StrongId<OpIdTag>;
/// Identifies an application-submitted DAG.
using DagId = detail::StrongId<DagIdTag>;
/// Identifies an end-to-end traffic flow.
using FlowId = detail::StrongId<FlowIdTag>;
/// Identifies a flow-table rule installed on a switch.
using RuleId = detail::StrongId<RuleIdTag>;
/// Identifies one worker inside a worker pool.
using WorkerId = detail::StrongId<WorkerIdTag>;
/// Identifies an SDN application instance.
using AppId = detail::StrongId<AppIdTag>;

}  // namespace zenith

namespace std {
template <typename Tag, typename Rep>
struct hash<zenith::detail::StrongId<Tag, Rep>> {
  size_t operator()(zenith::detail::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
