#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace zenith {

void Summary::add(double sample) {
  samples_.push_back(sample);
  sorted_valid_ = false;
}

void Summary::add_all(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_valid_ = false;
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::min() const {
  ensure_sorted();
  assert(!sorted_.empty());
  return sorted_.front();
}

double Summary::max() const {
  ensure_sorted();
  assert(!sorted_.empty());
  return sorted_.back();
}

double Summary::mean() const {
  assert(!samples_.empty());
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Summary::stddev() const {
  assert(!samples_.empty());
  double m = mean();
  double acc = 0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double Summary::percentile(double p) const {
  ensure_sorted();
  assert(!sorted_.empty());
  assert(p >= 0.0 && p <= 100.0);
  if (sorted_.size() == 1) return sorted_.front();
  double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> Summary::cdf() const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  out.reserve(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    out.emplace_back(sorted_[i], static_cast<double>(i + 1) /
                                     static_cast<double>(sorted_.size()));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double sample) {
  ++total_;
  if (sample < lo_) {
    ++underflow_;
    return;
  }
  if (sample >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((sample - lo_) / (hi_ - lo_) *
                                      static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

std::string Histogram::to_string(int width) const {
  std::size_t max_count = 0;
  for (std::size_t c : counts_) max_count = std::max(max_count, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    int bar = max_count == 0
                  ? 0
                  : static_cast<int>(static_cast<double>(counts_[i]) /
                                     static_cast<double>(max_count) * width);
    char line[64];
    std::snprintf(line, sizeof(line), "[%7.1f,%7.1f) %6zu ", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out << line << std::string(static_cast<std::size_t>(bar), '#') << "\n";
  }
  if (underflow_ > 0 || overflow_ > 0) {
    char line[64];
    std::snprintf(line, sizeof(line), "out of range: %zu below, %zu above\n",
                  underflow_, overflow_);
    out << line;
  }
  return out.str();
}

void TimeSeries::record(SimTime t, double value) {
  assert(t >= 0);
  auto idx = static_cast<std::size_t>(t / step_);
  if (idx >= values_.size()) values_.resize(idx + 1, 0.0);
  values_[idx] = value;
}

void TimeSeries::accumulate(SimTime t, double value) {
  assert(t >= 0);
  auto idx = static_cast<std::size_t>(t / step_);
  if (idx >= values_.size()) values_.resize(idx + 1, 0.0);
  values_[idx] += value;
}

std::vector<std::pair<double, double>> TimeSeries::as_seconds_series() const {
  std::vector<std::pair<double, double>> out;
  out.reserve(values_.size());
  for (std::size_t i = 0; i < values_.size(); ++i) {
    out.emplace_back(to_seconds(time_at(i)), values_[i]);
  }
  return out;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << " " << cells[i] << std::string(widths[i] - cells[i].size(), ' ')
          << " |";
    }
    out << "\n";
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t w : widths) out << std::string(w + 2, '-') << "|";
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace zenith
