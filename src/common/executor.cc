#include "common/executor.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace zenith {

std::size_t default_bench_threads() {
  const char* env = std::getenv("ZENITH_BENCH_THREADS");
  if (env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1) {
      return static_cast<std::size_t>(std::min(parsed, 64L));
    }
    std::fprintf(stderr,
                 "[WARN  parallel] ignoring ZENITH_BENCH_THREADS='%s' "
                 "(want an integer >= 1)\n",
                 env);
  }
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return 1;
  return std::min<std::size_t>(4, hw);
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  threads = std::min(threads, n);
  if (threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto worker = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

PersistentExecutor::PersistentExecutor(std::size_t threads) {
  std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

PersistentExecutor::~PersistentExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void PersistentExecutor::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    drain(*job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_cv_.notify_one();
    }
  }
}

void PersistentExecutor::drain(const std::function<void(std::size_t)>& body) {
  const std::size_t n = job_size_;
  for (;;) {
    std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      body(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void PersistentExecutor::run(std::size_t n,
                             const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &body;
    job_size_ = n;
    next_.store(0, std::memory_order_relaxed);
    active_ = workers_.size();
    first_error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  drain(body);  // the caller's thread pitches in
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return active_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

}  // namespace zenith
