// Hashing utilities used by the model checker's state store and by
// canonicalization (symmetry reduction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace zenith {

/// 64-bit FNV-1a over a byte span. Stable across runs and platforms, which
/// matters because model-checker results (state counts) are part of the
/// reproduced tables.
inline std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                           std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t fnv1a(std::string_view s,
                           std::uint64_t seed = 0xcbf29ce484222325ull) {
  return fnv1a(std::span<const std::uint8_t>(
                   reinterpret_cast<const std::uint8_t*>(s.data()), s.size()),
               seed);
}

/// boost-style hash_combine with 64-bit mixing.
inline void hash_combine(std::uint64_t& seed, std::uint64_t value) {
  value *= 0xff51afd7ed558ccdull;
  value ^= value >> 33;
  seed ^= value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

/// Incremental hasher for composite states.
class Hasher {
 public:
  void add(std::uint64_t v) { hash_combine(h_, v); }
  void add_bytes(std::span<const std::uint8_t> bytes) { add(fnv1a(bytes)); }
  template <typename T>
  void add_pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    add_bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(&v), sizeof(T)));
  }
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0x84222325cbf29ce4ull;
};

}  // namespace zenith
