// Concurrent 128-bit fingerprint set for the model checker's seen-state
// store (PR 9).
//
// The set is sharded by the high bits of a splitmix64-mixed fingerprint —
// the same stable mix the NIB shard map and the worker pool use
// (Nib::shard_slot / CoreContext::shard_of) — so shard choice is a pure
// function of the fingerprint, identical across runs and thread counts.
// Each shard is an open-addressing (linear probing) table of 16-byte
// fingerprints behind its own striped lock; inserts into different shards
// never contend. The table stores fingerprints only — hash-compacted
// states, TLC-style: a collision merges two states, with the usual
// astronomically-small-probability caveat the paper's Table 4 runs accept.
//
// A shard's slot array lives either on the heap (default) or in a
// file-backed mmap region when `Options::disk_store_path` names a
// directory: the seen-set can then exceed RAM and spill to disk, paging
// under kernel control. Spill files are unlinked on rehash/destruction —
// they are scratch, not an artifact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace zenith {

class ShardedFingerprintSet {
 public:
  using Fingerprint = std::pair<std::uint64_t, std::uint64_t>;

  struct Options {
    /// Number of striped-lock shards; rounded up to a power of two.
    std::size_t shards = 64;
    /// Initial slot count per shard; rounded up to a power of two. Shards
    /// grow independently (double + rehash) past 70% load.
    std::size_t initial_capacity_per_shard = 1024;
    /// When non-empty: a directory for mmap-backed slot arrays, letting the
    /// set exceed RAM. Must exist and be writable; construction throws
    /// std::runtime_error otherwise (a silently-in-memory "disk" store
    /// would defeat the knob's purpose).
    std::string disk_store_path;
  };

  ShardedFingerprintSet() : ShardedFingerprintSet(Options()) {}
  explicit ShardedFingerprintSet(Options options);
  ~ShardedFingerprintSet();

  ShardedFingerprintSet(const ShardedFingerprintSet&) = delete;
  ShardedFingerprintSet& operator=(const ShardedFingerprintSet&) = delete;

  /// Inserts `fp`; returns true when it was not present before. Thread-safe
  /// against concurrent insert()s.
  bool insert(Fingerprint fp);

  /// Total stored fingerprints. Exact only when no insert() is in flight.
  std::size_t size() const;

  std::size_t shard_count() const { return shards_.size(); }
  bool disk_backed() const { return disk_backed_; }
  /// Bytes currently mapped from spill files (0 for in-memory sets).
  std::size_t disk_bytes_mapped() const;

  /// The splitmix64 finalizer (public: shard routing must be reproducible
  /// by tests and by the checker's documentation of determinism).
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

 private:
  // A contiguous array of 2*capacity uint64 (lo, hi interleaved), on the
  // heap or mmap-backed. (0, 0) marks an empty slot; the real fingerprint
  // (0, 0) — should fnv1a ever produce it — is remapped deterministically
  // at insert so no state is silently dropped.
  struct Region {
    std::uint64_t* slots = nullptr;
    std::size_t capacity = 0;  // entries, power of two
    // mmap bookkeeping (disk-backed only).
    std::string file;
    std::size_t mapped_bytes = 0;
    std::vector<std::uint64_t> heap;  // in-memory backing
  };

  struct Shard {
    std::mutex mu;
    Region region;
    std::size_t count = 0;
  };

  Region make_region(std::size_t capacity, std::size_t shard_index,
                     std::size_t generation) const;
  static void release_region(Region& region);
  void grow(Shard& shard, std::size_t shard_index);
  static bool insert_into(Region& region, Fingerprint fp);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::size_t> generations_;
  int shard_bits_ = 0;
  bool disk_backed_ = false;
  std::string disk_dir_;
  std::uint64_t store_id_ = 0;  // disambiguates spill files between sets
};

}  // namespace zenith
