#include "common/logging.h"

#include <algorithm>
#include <cctype>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace zenith {

std::optional<LogLevel> parse_log_level(const std::string& name) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return std::nullopt;
}

Logger::Logger() {
  // Runtime threshold control without recompiling: parsed once, so tests
  // that lower/raise the level programmatically are not fighting the env.
  const char* env = std::getenv("ZENITH_LOG_LEVEL");
  if (env != nullptr && env[0] != '\0') {
    if (auto level = parse_log_level(env)) {
      level_ = *level;
    } else {
      std::fprintf(stderr,
                   "[WARN  logging] unrecognized ZENITH_LOG_LEVEL '%s' "
                   "(want trace|debug|info|warn|error|off)\n",
                   env);
    }
  }
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void Logger::log(LogLevel level, const char* file, int line,
                 std::string message) {
  if (sink_) {
    sink_(level, file, line, message);
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", level_name(level), basename_of(file),
               line, message.c_str());
}

std::string log_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return "<format error>";
  }
  std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
  va_end(args_copy);
  return std::string(buf.data(), static_cast<std::size_t>(needed));
}

}  // namespace zenith
