#include "common/logging.h"

#include <cstdarg>
#include <cstring>
#include <vector>

namespace zenith {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

const char* basename_of(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void Logger::log(LogLevel level, const char* file, int line,
                 std::string message) {
  std::fprintf(stderr, "[%s %s:%d] %s\n", level_name(level), basename_of(file),
               line, message.c_str());
}

std::string log_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return "<format error>";
  }
  std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
  va_end(args_copy);
  return std::string(buf.data(), static_cast<std::size_t>(needed));
}

}  // namespace zenith
