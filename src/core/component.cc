#include "core/component.h"

#include "common/logging.h"
#include "obs/obs.h"

namespace zenith {

Component::Component(Simulator* sim, std::string name, SimTime service_time)
    : sim_(sim), name_(std::move(name)), service_time_(service_time) {}

void Component::crash() {
  if (!alive_) return;
  alive_ = false;
  busy_ = false;
  ++epoch_;  // orphan any scheduled serve
  ++crash_count_;
  on_crash();
  if (obs_ != nullptr) obs_->event(name_, "crash");
  ZLOG_DEBUG("component %s crashed", name_.c_str());
}

void Component::restart() {
  if (alive_) return;
  alive_ = true;
  on_restart();
  if (obs_ != nullptr) obs_->event(name_, "restart");
  ZLOG_DEBUG("component %s restarted", name_.c_str());
  kick();
}

void Component::kick() {
  if (!alive_ || busy_) return;
  schedule_service();
}

void Component::schedule_service() {
  busy_ = true;
  std::uint64_t epoch = epoch_;
  sim_->schedule(service_time_, [this, epoch] {
    if (epoch != epoch_) return;  // crashed (and maybe restarted) meanwhile
    serve();
  });
}

void Component::serve() {
  busy_ = false;
  if (!alive_) return;
  if (gate_) {
    SimTime not_before = gate_();
    if (sim_->now() < not_before) {
      // NIB transaction in progress (PR reconciliation batch): defer.
      busy_ = true;
      std::uint64_t epoch = epoch_;
      sim_->schedule_at(not_before, [this, epoch] {
        if (epoch != epoch_) return;
        serve();
      });
      return;
    }
  }
  if (permit_ && !permit_()) {
    // Orchestrated run: wait for the Trace Orchestrator's grant (it will
    // kick() us).
    return;
  }
  bool did_work = try_step();
  ++steps_served_;
  if (did_work && obs_ != nullptr) {
    // Service delay elapsed before try_step, so the step retroactively
    // occupied [now - service_time, now].
    obs_->tracer().complete("step", name_, sim_->now() - service_time_,
                            sim_->now());
    obs_->count("component_steps", {{"component", name_}});
  }
  if (step_observer_) step_observer_(did_work);
  if (did_work) schedule_service();  // more work may be pending
}

}  // namespace zenith
