// Controller component framework.
//
// Every ZENITH-core sub-component (Sequencer, Worker, Monitoring Server,
// Topo Event Handler, ...) is a Component: a logical thread that serves one
// work item at a time with a configurable service delay. "Concurrency" is
// logical interleaving on the simulation clock, exactly how the TLA+ spec
// treats processes.
//
// Crash/restart protocol (§3.9, Table 3 "CP Partial"):
//  * crash(): the component loses all local state and stops serving. Work
//    items remain in their queues when the component followed the
//    read-head/ack-pop discipline; anything held only in locals is gone.
//  * restart(): invoked by the Watchdog; runs on_restart() so the component
//    can re-derive its state from the NIB, then resumes serving.
#pragma once

#include <functional>
#include <string>

#include "common/ids.h"
#include "sim/simulator.h"

namespace zenith::obs {
class Observability;
}

namespace zenith {

class Component {
 public:
  Component(Simulator* sim, std::string name, SimTime service_time);
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  const std::string& name() const { return name_; }
  bool alive() const { return alive_; }
  SimTime service_time() const { return service_time_; }

  /// Kills the component: local state dropped, serving stops. Safe to call
  /// on a dead component (no-op).
  void crash();

  /// Restarts a dead component (Watchdog). Runs recovery, then resumes.
  void restart();

  /// Wake hint: input might be available. Queues' wake callbacks call this.
  void kick();

  std::uint64_t crash_count() const { return crash_count_; }
  std::uint64_t steps_served() const { return steps_served_; }

  /// Held components are skipped by the Watchdog: used while a complete
  /// microservice failure waits for its standby-instance takeover instead
  /// of per-component restarts.
  void set_held(bool held) { held_ = held; }
  bool held() const { return held_; }

  /// Optional admission gate: before serving a step the component waits
  /// until the returned time. The PR baseline points this at the NIB
  /// transaction lock; ZENITH leaves it unset.
  void set_gate(std::function<SimTime()> gate) { gate_ = std::move(gate); }

  /// Trace-orchestration hooks (§6 "Trace Orchestrator"): when a permit
  /// function is installed, the component blocks before every step until it
  /// returns true (the orchestrator kicks it when granting). The step
  /// observer fires after each step with whether work was done.
  void set_permit(std::function<bool()> permit) { permit_ = std::move(permit); }
  void set_step_observer(std::function<void(bool)> observer) {
    step_observer_ = std::move(observer);
  }

  /// Attaches the observability bundle (null = uninstrumented, the default).
  /// Productive serve() steps then appear as retroactive spans on this
  /// component's track, and crash/restart become recorded events.
  void set_observability(obs::Observability* o) { obs_ = o; }

 protected:
  obs::Observability* observability() const { return obs_; }

  /// Serve one work item if available. Return false when idle (nothing to
  /// do); the component then sleeps until the next kick().
  virtual bool try_step() = 0;

  /// Drop all local (non-NIB) state. Called by crash().
  virtual void on_crash() {}

  /// Re-derive local state from the NIB. Called by restart().
  virtual void on_restart() {}

  Simulator* sim() { return sim_; }

 private:
  void schedule_service();
  void serve();

  Simulator* sim_;
  std::string name_;
  SimTime service_time_;
  std::function<SimTime()> gate_;
  std::function<bool()> permit_;
  std::function<void(bool)> step_observer_;
  obs::Observability* obs_ = nullptr;
  bool alive_ = true;
  bool busy_ = false;
  bool held_ = false;
  std::uint64_t epoch_ = 0;  // invalidates scheduled serves across crashes
  std::uint64_t crash_count_ = 0;
  std::uint64_t steps_served_ = 0;
};

}  // namespace zenith
