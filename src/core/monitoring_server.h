// The OFC Monitoring Server (Table 1): terminates switch channels, collects
// ACKs and health events, and updates the NIB.
//
// Verified-spec behaviours preserved:
//  * P3: every ACK updates the NIB — an install ACK marks the OP DONE and
//    adds it to the controller's routing view (R_c) no matter what state the
//    OP was in (stale-state races are resolved by the recovery pipeline's
//    ordering, not by dropping ACKs);
//  * P4(2): ACKs from one switch are processed in arrival order (the fabric
//    guarantees per-switch FIFO delivery, this component processes FIFO);
//  * routing: CLEAR_TCAM ACKs and directed-reconciliation dumps are
//    forwarded to the Topo Event Handler, role ACKs to the failover
//    manager, and raw health events to the Topo Event Handler.
#pragma once

#include "core/component.h"
#include "core/context.h"

namespace zenith {

class MonitoringServer : public Component {
 public:
  explicit MonitoringServer(CoreContext* ctx);

 protected:
  bool try_step() override;
  void on_restart() override;

 private:
  bool process_reply();
  bool process_health_event();

  CoreContext* ctx_;
};

}  // namespace zenith
