// The OFC Monitoring Server (Table 1): terminates switch channels, collects
// ACKs and health events, and updates the NIB.
//
// Verified-spec behaviours preserved:
//  * P3: every ACK updates the NIB — an install ACK marks the OP DONE and
//    adds it to the controller's routing view (R_c) no matter what state the
//    OP was in (stale-state races are resolved by the recovery pipeline's
//    ordering, not by dropping ACKs);
//  * P4(2): ACKs from one switch are processed in arrival order (the fabric
//    guarantees per-switch FIFO delivery, this component processes FIFO);
//  * routing: CLEAR_TCAM ACKs and directed-reconciliation dumps are
//    forwarded to the Topo Event Handler, role ACKs to the failover
//    manager, and raw health events to the Topo Event Handler.
//
// Sharded mode (PR 8): one instance per NIB shard ("monitoring<shard>")
// consumes the per-shard queues the Reply Router demuxes from the transport
// streams, and the install/delete ACK commit becomes a CommitJob pushed to
// the shard's MPSC queue — the CommitPump applies jobs of distinct shards
// in parallel and performs the NIB transaction + op-closed observability
// there. Everything else (orphan filtering, repl routing, CLEAR_TCAM inline
// commit, dump/role forwarding) is unchanged.
#pragma once

#include <cstddef>
#include <limits>

#include "core/component.h"
#include "core/context.h"

namespace zenith {

class MonitoringServer : public Component {
 public:
  /// Classic single instance on the raw transport streams.
  explicit MonitoringServer(CoreContext* ctx);
  /// Sharded instance on ctx->shard_{replies,health,links}[shard].
  MonitoringServer(CoreContext* ctx, std::size_t shard);

 protected:
  bool try_step() override;
  void on_restart() override;

 private:
  static constexpr std::size_t kUnsharded =
      std::numeric_limits<std::size_t>::max();

  bool process_reply();
  bool process_health_event();
  NadirFifo<SwitchReply>& reply_queue();
  NadirFifo<SwitchHealthEvent>& health_queue();
  NadirFifo<LinkHealthEvent>& link_queue();

  CoreContext* ctx_;
  std::size_t shard_ = kUnsharded;
};

}  // namespace zenith
