// EventualApplyPump (PR 10, eventual consistency mode only): the apply
// cursor of the NIB's eventual log.
//
// Eventual-class commits (install-only ACK batches; see nib/consistency.h)
// are durably recorded at commit time but become visible to readers only
// when this component's cursor reaches them. Each service step applies up
// to ConsistencyConfig::apply_batch entries as real NIB transactions —
// status flips, view edits, coalesced events — so eventual visibility
// trails the commit point by at most the staleness bound (E1; the bound is
// enforced at commit time) and by at most a few pump service periods in
// simulated time.
//
// Crash semantics: the log itself is NIB-resident (committed durable
// state), so a pump crash loses nothing — the Watchdog restart resumes
// draining, and any strong-class path reaching the NIB first drains it
// synchronously via Nib::strong_barrier. The pump is deliberately NOT part
// of the OFC instance (it is the NIB's own apply daemon): a complete OFC
// failure neither clears the log nor re-homes the cursor.
#pragma once

#include "core/component.h"
#include "core/context.h"
#include "obs/obs.h"

namespace zenith {

class EventualApplyPump : public Component {
 public:
  explicit EventualApplyPump(CoreContext* ctx)
      : Component(ctx->sim, "eventual_pump", ctx->config.eventual_apply_service),
        ctx_(ctx) {
    ctx_->nib->set_eventual_wake([this] { kick(); });
  }

 protected:
  bool try_step() override {
    const std::size_t batch =
        ctx_->config.consistency.apply_batch == 0
            ? 1
            : ctx_->config.consistency.apply_batch;
    const std::size_t applied = ctx_->nib->apply_eventual(batch);
    if (applied > 0 && ctx_->observability != nullptr) {
      for (std::size_t i = 0; i < applied; ++i) {
        ctx_->observability->count("eventual_applies");
      }
    }
    return applied > 0;
  }

 private:
  CoreContext* ctx_;
};

}  // namespace zenith
