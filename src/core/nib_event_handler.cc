#include "core/nib_event_handler.h"

#include <algorithm>
#include <optional>
#include <string>

#include "obs/obs.h"

namespace zenith {

namespace {

const char* nib_event_name(NibEvent::Type type) {
  switch (type) {
    case NibEvent::Type::kOpStatusChanged: return "op-status";
    case NibEvent::Type::kSwitchHealthChanged: return "switch-health";
    case NibEvent::Type::kDagAccepted: return "dag-accepted";
    case NibEvent::Type::kDagDone: return "dag-done";
    case NibEvent::Type::kTopologyChanged: return "topology";
  }
  return "unknown";
}

}  // namespace

NibEventHandler::NibEventHandler(CoreContext* ctx)
    : Component(ctx->sim, "nib_event_handler", ctx->config.nib_event_service),
      ctx_(ctx) {
  ctx_->nib_event_queue.set_wake_callback([this] { kick(); });
}

NibEventHandler::NibEventHandler(CoreContext* ctx, std::size_t shard)
    : Component(ctx->sim, "nib_event_handler" + std::to_string(shard),
                ctx->config.nib_event_service),
      ctx_(ctx),
      shard_(shard) {}

void NibEventHandler::register_app_sink(NadirFifo<NibEvent>* sink) {
  app_sinks_.push_back(sink);
}

bool NibEventHandler::try_step() {
  if (shard_ != kUnsharded) {
    SpscRing<NibEvent>& ring = *ctx_->shard_event_rings[shard_];
    const std::size_t budget =
        std::max<std::size_t>(1, ctx_->config.nib_event_batch);
    bool did_work = false;
    for (std::size_t i = 0; i < budget; ++i) {
      std::optional<NibEvent> event = ring.try_pop();
      if (!event.has_value()) break;
      did_work = true;
      if (ctx_->observability != nullptr) {
        ctx_->observability->count("nib_events_routed",
                                   {{"type", nib_event_name(event->type)}});
      }
      route_sharded(*event);
    }
    return did_work;
  }

  NadirFifo<NibEvent>& queue = ctx_->nib_event_queue;
  if (queue.empty()) return false;
  NibEvent event = queue.peek();
  if (ctx_->observability != nullptr) {
    ctx_->observability->count("nib_events_routed",
                               {{"type", nib_event_name(event.type)}});
  }

  // Sequencers: everything is a potential scheduling trigger.
  for (auto& wakeup : ctx_->sequencer_wakeups) wakeup->push(event);

  // Applications: health + DAG lifecycle (OP-level chatter stays internal).
  bool app_relevant = event.type == NibEvent::Type::kSwitchHealthChanged ||
                      event.type == NibEvent::Type::kDagDone ||
                      event.type == NibEvent::Type::kTopologyChanged;
  if (app_relevant) {
    for (NadirFifo<NibEvent>* sink : app_sinks_) sink->push(event);
  }
  queue.ack_pop();
  return true;
}

void NibEventHandler::route_sharded(const NibEvent& event) {
  // Applications: the same relevance rules as the classic path. Each event
  // is drained from exactly one ring, so sinks registered with every
  // instance still see each event once.
  bool app_relevant = event.type == NibEvent::Type::kSwitchHealthChanged ||
                      event.type == NibEvent::Type::kDagDone ||
                      event.type == NibEvent::Type::kTopologyChanged;
  if (app_relevant) {
    for (NadirFifo<NibEvent>* sink : app_sinks_) sink->push(event);
  }

  // Sequencer wake filtering. Sequencers re-derive truth from the NIB on
  // every wake, so a wake is only useful when NIB state changed in a way
  // that can make new OPs schedulable or a DAG certifiable:
  //  - kDone (a commit unblocks successors / completes the DAG) and kNone
  //    (a reset/requeue re-arms an OP) — kScheduled/kSent are echoes of the
  //    scheduling pipeline's own writes, pure wake noise;
  //  - switch health transitions (P7 send-gates lift or engage);
  //  - kDagAccepted (a new DAG needs its first scheduling pass).
  // kDagDone and kTopologyChanged carry no scheduling consequence.
  bool broadcast = false;
  std::optional<std::size_t> target;
  switch (event.type) {
    case NibEvent::Type::kDagAccepted:
      target = ctx_->sequencer_of(event.dag);
      break;
    case NibEvent::Type::kOpStatusChanged:
      if (event.op_status != OpStatus::kDone &&
          event.op_status != OpStatus::kNone) {
        return;
      }
      [[fallthrough]];
    case NibEvent::Type::kSwitchHealthChanged: {
      // Only the owner of the current DAG can schedule; wake it. With no
      // current DAG there is no single owner — broadcast the hint.
      std::optional<DagId> current = ctx_->nib->current_dag();
      if (current.has_value()) {
        target = ctx_->sequencer_of(*current);
      } else {
        broadcast = true;
      }
      break;
    }
    case NibEvent::Type::kDagDone:
    case NibEvent::Type::kTopologyChanged:
      return;  // app-facing only
  }
  if (broadcast) {
    for (auto& wakeup : ctx_->sequencer_wakeups) wakeup->push(event);
  } else if (target.has_value()) {
    ctx_->sequencer_wakeups[*target]->push(event);
  }
}

}  // namespace zenith
