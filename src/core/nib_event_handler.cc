#include "core/nib_event_handler.h"

#include "obs/obs.h"

namespace zenith {

namespace {

const char* nib_event_name(NibEvent::Type type) {
  switch (type) {
    case NibEvent::Type::kOpStatusChanged: return "op-status";
    case NibEvent::Type::kSwitchHealthChanged: return "switch-health";
    case NibEvent::Type::kDagAccepted: return "dag-accepted";
    case NibEvent::Type::kDagDone: return "dag-done";
    case NibEvent::Type::kTopologyChanged: return "topology";
  }
  return "unknown";
}

}  // namespace

NibEventHandler::NibEventHandler(CoreContext* ctx)
    : Component(ctx->sim, "nib_event_handler", ctx->config.nib_event_service),
      ctx_(ctx) {
  ctx_->nib_event_queue.set_wake_callback([this] { kick(); });
}

void NibEventHandler::register_app_sink(NadirFifo<NibEvent>* sink) {
  app_sinks_.push_back(sink);
}

bool NibEventHandler::try_step() {
  NadirFifo<NibEvent>& queue = ctx_->nib_event_queue;
  if (queue.empty()) return false;
  NibEvent event = queue.peek();
  if (ctx_->observability != nullptr) {
    ctx_->observability->count("nib_events_routed",
                               {{"type", nib_event_name(event.type)}});
  }

  // Sequencers: everything is a potential scheduling trigger.
  for (auto& wakeup : ctx_->sequencer_wakeups) wakeup->push(event);

  // Applications: health + DAG lifecycle (OP-level chatter stays internal).
  bool app_relevant = event.type == NibEvent::Type::kSwitchHealthChanged ||
                      event.type == NibEvent::Type::kDagDone ||
                      event.type == NibEvent::Type::kTopologyChanged;
  if (app_relevant) {
    for (NadirFifo<NibEvent>* sink : app_sinks_) sink->push(event);
  }
  queue.ack_pop();
  return true;
}

}  // namespace zenith
