// OFC planned failover (Table 3 "MO Planned Failover", Figure 15).
//
// Zenith's verified procedure is hitless:
//   1. pause the Worker Pool (no new OPs leave the controller);
//   2. drain — wait until no OP is in the SENT state, i.e. every in-flight
//      ACK has been processed, so no acknowledgment can be lost in the
//      handoff;
//   3. move the master role on every healthy switch to the standby instance
//      (role-change requests, collected role ACKs);
//   4. bump the master instance and resume the workers.
//
// The PR baseline (skip_drain) jumps straight to the role change and drops
// whatever ACKs were in flight toward the old instance — those OPs are stuck
// in SENT until a reconciliation or timeout notices, which is exactly the
// tail Figure 15 shows.
#pragma once

#include <functional>
#include <unordered_set>

#include "core/component.h"
#include "core/context.h"

namespace zenith {

class FailoverManager : public Component {
 public:
  explicit FailoverManager(CoreContext* ctx);

  /// Begins a planned failover. `on_done(sim_time)` fires when the new
  /// instance is master everywhere and the workers run again.
  void request_planned_failover(bool drain_first,
                                std::function<void(SimTime)> on_done);

  bool in_progress() const { return phase_ != Phase::kIdle; }

 protected:
  bool try_step() override;
  void on_crash() override;
  void on_restart() override;

 private:
  enum class Phase : std::uint8_t {
    kIdle,
    kDraining,
    kAwaitingRoleAcks,
  };

  void begin_role_change();
  void send_role_changes();
  void schedule_role_ack_retry();
  bool all_roles_acked() const;

  CoreContext* ctx_;
  Phase phase_ = Phase::kIdle;
  bool drain_first_ = true;
  int target_instance_ = 0;
  /// Bumped at every begin_role_change; pending retry timers from a
  /// superseded round compare against it and lapse.
  std::uint64_t role_change_round_ = 0;
  std::unordered_set<SwitchId> acked_;
  std::function<void(SimTime)> on_done_;
};

}  // namespace zenith
