#include "core/watchdog.h"

#include "common/logging.h"
#include "obs/obs.h"

namespace zenith {

Watchdog::Watchdog(CoreContext* ctx) : ctx_(ctx) {}

void Watchdog::watch(Component* component) { watched_.push_back(component); }

void Watchdog::start() {
  if (running_) return;
  running_ = true;
  scan();
}

void Watchdog::scan() {
  if (!running_) return;
  for (Component* c : watched_) {
    if (!c->alive() && !c->held()) {
      ZLOG_DEBUG("watchdog restarting %s", c->name().c_str());
      if (ctx_->observability != nullptr) {
        ctx_->observability->event("watchdog", "restart",
                                   "component=" + c->name());
      }
      c->restart();
      ++restarts_;
    }
  }
  ctx_->sim->schedule(ctx_->config.watchdog_period, [this] { scan(); });
}

}  // namespace zenith
