#include "core/topo_event_handler.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "obs/obs.h"

namespace zenith {

TopoEventHandler::TopoEventHandler(CoreContext* ctx)
    : Component(ctx->sim, "topo_handler", ctx->config.topo_handler_service),
      ctx_(ctx) {
  ctx_->topo_event_queue.set_wake_callback([this] { kick(); });
  ctx_->cleanup_reply_queue.set_wake_callback([this] { kick(); });
}

bool TopoEventHandler::try_step() {
  if (process_health_event()) return true;
  if (process_cleanup_reply()) return true;
  return process_deferred_reset();
}

bool TopoEventHandler::process_health_event() {
  NadirFifo<SwitchHealthEvent>& queue = ctx_->topo_event_queue;
  if (queue.empty()) return false;
  SwitchHealthEvent event = queue.peek();
  if (event.type == SwitchHealthEvent::Type::kFailure) {
    handle_failure(event.sw);
  } else {
    handle_recovery(event.sw);
  }
  queue.ack_pop();
  return true;
}

void TopoEventHandler::handle_failure(SwitchId sw) {
  Nib& nib = *ctx_->nib;
  if (nib.switch_health(sw) == SwitchHealth::kDown) return;  // duplicate
  // P8(1): record the failure immediately. P7: do NOT touch the states of
  // affected OPs — at this point the controller cannot know which in-flight
  // OPs made it, and guessing is the §3.9 "ambiguous state machine" bug.
  nib.set_switch_health(sw, SwitchHealth::kDown);
  if (ctx_->observability != nullptr) {
    ctx_->observability->event(name(), "switch-down",
                               "sw=" + std::to_string(sw.value()));
  }
  ZLOG_DEBUG("sw%u marked DOWN", sw.value());
}

void TopoEventHandler::handle_recovery(SwitchId sw) {
  Nib& nib = *ctx_->nib;
  if (nib.switch_health(sw) != SwitchHealth::kDown) return;  // duplicate/spurious

  if (ctx_->observability != nullptr) ctx_->observability->recovery_started(sw);

  if (ctx_->config.bugs.skip_recovery_cleanup) {
    // PR-style optimistic recovery: believe the NIB, skip cleanup. Any
    // state the switch lost (or hidden state it kept) is now inconsistent
    // until some reconciliation pass notices.
    nib.set_switch_health(sw, SwitchHealth::kUp);
    if (ctx_->observability != nullptr) {
      ctx_->observability->recovery_finished(sw, "optimistic");
    }
    return;
  }

  nib.set_switch_health(sw, SwitchHealth::kRecovering);
  issue_cleanup(sw);
}

void TopoEventHandler::issue_cleanup(SwitchId sw) {
  Nib& nib = *ctx_->nib;
  Op cleanup;
  cleanup.id = ctx_->op_ids->next();
  cleanup.sw = sw;
  cleanup.type = ctx_->config.directed_reconciliation ? OpType::kDumpTable
                                                      : OpType::kClearTcam;
  nib.put_op(cleanup);
  nib.set_op_status(cleanup.id, OpStatus::kScheduled);
  if (ctx_->observability != nullptr) {
    // Cleanup OPs have no DAG; their lifecycle span hangs off the recovery.
    ctx_->observability->op_scheduled(cleanup.id, DagId::invalid(), sw,
                                      name());
  }

  if (ctx_->config.bugs.direct_clear_tcam) {
    // Bug: bypass the Worker Pool. The CLEAR races any OP the pool already
    // queued for this switch (violates P6's reliance on P4 ordering).
    SwitchRequest request;
    request.op = cleanup;
    request.xid = cleanup.id.value();
    request.type = cleanup.type == OpType::kClearTcam
                       ? SwitchRequest::Type::kClearTcam
                       : SwitchRequest::Type::kDumpTable;
    nib.set_op_status(cleanup.id, OpStatus::kSent);
    if (ctx_->observability != nullptr) {
      ctx_->observability->op_stage(cleanup.id, name(), "op-send",
                                    "direct=1 sw=" +
                                        std::to_string(sw.value()));
    }
    ctx_->transport->send(sw, request);
    return;
  }
  // Figure A.5 step 3: the cleanup request goes onto the OP queue and
  // traverses the Worker Pool like any other OP.
  ctx_->enqueue_op(sw, cleanup.id);
}

bool TopoEventHandler::newer_cleanup_pending(SwitchId sw, OpId acked) const {
  Nib& nib = *ctx_->nib;
  for (OpId id : nib.ops_on_switch(
           sw, {OpStatus::kScheduled, OpStatus::kInFlight, OpStatus::kSent})) {
    const Op& op = nib.op(id);
    if ((op.type == OpType::kClearTcam || op.type == OpType::kDumpTable) &&
        id > acked) {
      return true;
    }
  }
  return false;
}

bool TopoEventHandler::process_cleanup_reply() {
  NadirFifo<SwitchReply>& queue = ctx_->cleanup_reply_queue;
  if (queue.empty()) return false;
  SwitchReply reply = queue.peek();
  SwitchId sw = reply.sw;
  Nib& nib = *ctx_->nib;

  // Only finalize for the most recent cleanup: if the switch failed again
  // and a newer cleanup is outstanding, this ACK is stale.
  if (nib.switch_health(sw) == SwitchHealth::kRecovering &&
      !newer_cleanup_pending(sw, reply.op.id)) {
    if (reply.type == SwitchReply::Type::kDumpReply) {
      apply_directed_diff(reply);
      nib.set_op_status(reply.op.id, OpStatus::kDone);
      if (ctx_->observability != nullptr) {
        ctx_->observability->op_closed(reply.op.id, name(), "done");
      }
      nib.set_switch_health(sw, SwitchHealth::kUp);
      if (ctx_->observability != nullptr) {
        ctx_->observability->recovery_finished(sw, "directed-diff");
      }
    } else {
      finalize_recovery(sw);
    }
  }
  queue.ack_pop();
  return true;
}

void TopoEventHandler::finalize_recovery(SwitchId sw) {
  Nib& nib = *ctx_->nib;
  if (ctx_->config.bugs.mark_up_before_reset) {
    // Figure A.8 bug: the switch becomes schedulable *before* its OP states
    // are reset. The reset is a slow scan ("Topo Event Handler was
    // computing all the necessary changes") that lands much later, so a
    // freshly installed OP's DONE can be wiped — the NIB then claims the
    // rule is absent while the switch has it: a hidden entry.
    nib.set_switch_health(sw, SwitchHealth::kUp);
    if (ctx_->observability != nullptr) {
      ctx_->observability->recovery_finished(sw, "up-before-reset");
    }
    SimTime due = sim()->now() + ctx_->config.bugs.deferred_reset_delay;
    deferred_resets_.emplace_back(sw, due);
    sim()->schedule_at(due, [this] { kick(); });
    return;
  }
  // Correct order (§G fix): first reset OP states, then mark UP.
  reset_switch_ops(sw);
  nib.set_switch_health(sw, SwitchHealth::kUp);
  if (ctx_->observability != nullptr) {
    ctx_->observability->recovery_finished(sw, "reset-then-up");
  }
  ZLOG_DEBUG("sw%u recovery finalized", sw.value());
}

bool TopoEventHandler::process_deferred_reset() {
  for (std::size_t i = 0; i < deferred_resets_.size(); ++i) {
    auto [sw, due] = deferred_resets_[i];
    if (sim()->now() < due) continue;
    deferred_resets_.erase(deferred_resets_.begin() +
                           static_cast<std::ptrdiff_t>(i));
    reset_switch_ops(sw);
    return true;
  }
  return false;
}

void TopoEventHandler::reset_switch_ops(SwitchId sw) {
  Nib& nib = *ctx_->nib;
  // Recovery resets are strong-class (PR 10, E2): the scan below reads and
  // rewrites OP statuses, and a pending eventual install for this switch
  // would be invisibly re-armed under it. Drain the log first so the reset
  // decides against the committed truth.
  if (ctx_->config.consistency.any_eventual()) nib.strong_barrier();
  // The TCAM is empty (CLEAR ACKed). Everything the controller believed
  // about this switch is void: Sent/InFlight OPs died with the failure,
  // DONE OPs were wiped, FailedSwitch OPs may now be retried. OPs still in
  // the SCHEDULED state stay — they sit behind the CLEAR in the worker
  // queue and will be (re)delivered to the now-empty switch.
  for (OpId id : nib.ops_on_switch(sw, {OpStatus::kInFlight, OpStatus::kSent,
                                        OpStatus::kDone,
                                        OpStatus::kFailedSwitch})) {
    const Op& op = nib.op(id);
    if (op.type == OpType::kClearTcam || op.type == OpType::kDumpTable) {
      continue;  // cleanup OPs keep their history
    }
    nib.set_op_status(id, OpStatus::kNone);
    if (ctx_->observability != nullptr) {
      // Still-open spans (e.g. SENT ops that died with the switch) end here;
      // the sequencer's rescan opens a fresh span when it re-schedules.
      ctx_->observability->op_closed(id, name(), "reset");
    }
  }
  nib.view_clear_switch(sw);
}

void TopoEventHandler::apply_directed_diff(const SwitchReply& dump) {
  // ZENITH-DR: reconcile exactly one switch from its dumped table.
  Nib& nib = *ctx_->nib;
  // Same strong-class rule as reset_switch_ops: the diff must compare the
  // dump against fully-applied NIB state, not a half-published prefix.
  if (ctx_->config.consistency.any_eventual()) nib.strong_barrier();
  SwitchId sw = dump.sw;
  std::vector<OpId> dumped;
  dumped.reserve(dump.table.size());
  for (const DumpedEntry& e : dump.table) dumped.push_back(e.installed_by);
  std::sort(dumped.begin(), dumped.end());
  auto present = [&](OpId id) {
    return std::binary_search(dumped.begin(), dumped.end(), id);
  };

  // (a) Entries the switch kept: adopt ones the NIB knows (ACK may have been
  //     lost), delete alien/stale ones through the normal pipeline.
  for (OpId id : dumped) {
    if (nib.has_op(id)) {
      OpStatus status = nib.op_status(id);
      if (status != OpStatus::kDone) {
        nib.set_op_status(id, OpStatus::kDone);
        if (ctx_->observability != nullptr) {
          // The dump proves the install landed even though the ACK was lost.
          ctx_->observability->op_closed(id, name(), "adopted");
        }
      }
      nib.view_add_installed(sw, id);
    } else {
      // Rule installed by nobody we know (e.g. a previous controller
      // incarnation): remove it.
      Op del;
      del.id = ctx_->op_ids->next();
      del.type = OpType::kDeleteRule;
      del.sw = sw;
      del.delete_target = id;
      nib.put_op(del);
      nib.set_op_status(del.id, OpStatus::kScheduled);
      if (ctx_->observability != nullptr) {
        ctx_->observability->op_scheduled(del.id, DagId::invalid(), sw,
                                          name());
      }
      ctx_->enqueue_op(sw, del.id);
    }
  }
  // (b) OPs the NIB believed present/in-flight that the dump disproves.
  for (OpId id : nib.ops_on_switch(sw, {OpStatus::kInFlight, OpStatus::kSent,
                                        OpStatus::kDone,
                                        OpStatus::kFailedSwitch})) {
    const Op& op = nib.op(id);
    if (op.type != OpType::kInstallRule) {
      if (op.type == OpType::kDeleteRule &&
          nib.op_status(id) != OpStatus::kDone) {
        // A lost delete: its target either vanished with the failure or is
        // in the dump; either way re-evaluate from scratch.
        nib.set_op_status(id, present(op.delete_target) ? OpStatus::kNone
                                                        : OpStatus::kDone);
      }
      continue;
    }
    if (!present(id)) {
      nib.set_op_status(id, OpStatus::kNone);
      nib.view_remove_installed(sw, id);
      if (ctx_->observability != nullptr) {
        ctx_->observability->op_closed(id, name(), "reset");
      }
    }
  }
}

void TopoEventHandler::on_crash() { deferred_resets_.clear(); }

void TopoEventHandler::on_restart() {
  // Re-derive recovery progress from the NIB: for every switch stuck in
  // RECOVERING, either a cleanup OP is still outstanding (nothing to do —
  // its ACK will arrive), its ACK was consumed by the monitoring server but
  // our volatile cleanup queue died with us (finalize now), or the cleanup
  // itself was lost (re-issue).
  Nib& nib = *ctx_->nib;
  for (SwitchId sw : nib.switches()) {
    if (nib.switch_health(sw) != SwitchHealth::kRecovering) continue;
    bool outstanding = false;
    bool completed = false;
    for (OpId id : nib.ops_on_switch(
             sw, {OpStatus::kScheduled, OpStatus::kInFlight, OpStatus::kSent,
                  OpStatus::kDone})) {
      const Op& op = nib.op(id);
      if (op.type != OpType::kClearTcam && op.type != OpType::kDumpTable) {
        continue;
      }
      if (nib.op_status(id) == OpStatus::kDone) {
        completed = true;
      } else {
        outstanding = true;
      }
    }
    if (outstanding) continue;
    if (completed && !ctx_->config.directed_reconciliation) {
      finalize_recovery(sw);
    } else {
      // DR dumps are request/response; a consumed dump without finalize
      // must be re-read. NR with no cleanup ever issued: issue one.
      issue_cleanup(sw);
    }
  }
}

}  // namespace zenith
