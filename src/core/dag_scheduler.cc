#include "core/dag_scheduler.h"

#include <unordered_set>

#include "common/logging.h"
#include "obs/obs.h"

namespace zenith {

DagScheduler::DagScheduler(CoreContext* ctx)
    : Component(ctx->sim, "dag_scheduler", ctx->config.scheduler_service),
      ctx_(ctx) {
  ctx_->dag_request_queue.set_wake_callback([this] { kick(); });
}

bool DagScheduler::try_step() {
  NadirFifo<DagRequest>& queue = ctx_->dag_request_queue;
  if (queue.empty()) return false;
  // Read-head / process / ack-pop, same crash-safe discipline as workers.
  DagRequest request = queue.peek();
  if (request.type == DagRequest::Type::kInstall) {
    admit(std::move(request.dag));
  } else {
    remove(request.dag_id);
  }
  queue.ack_pop();
  return true;
}

std::vector<Op> DagScheduler::stale_deletions(const Dag& old_dag,
                                              const Dag& incoming,
                                              bool sweep_all_flows) {
  Nib& nib = *ctx_->nib;
  // What the incoming DAG already takes care of.
  std::unordered_set<OpId> covered;
  // Flows the incoming DAG re-programs. The §3.3 hazard ("A:B might be
  // installed after the third DAG is complete, overwriting A:C") is an
  // in-flight stale OP for a flow whose intent just changed; OPs of flows
  // the new DAG does not touch remain intended and must not be swept.
  std::unordered_set<FlowId> touched_flows;
  for (const Op* op : incoming.all_ops()) {
    if (op->type == OpType::kDeleteRule) covered.insert(op->delete_target);
    covered.insert(op->id);
    if (op->type == OpType::kInstallRule) {
      touched_flows.insert(op->rule.flow);
    }
  }
  std::vector<Op> deletions;
  for (const Op* op : old_dag.all_ops()) {
    if (op->type != OpType::kInstallRule) continue;
    if (covered.count(op->id)) continue;
    if (!sweep_all_flows && !touched_flows.count(op->rule.flow)) continue;
    // A deletion on a non-UP switch could never be ACKed (P7) and would
    // wedge the new DAG. Dead switches need no deletion anyway: recovery
    // cleanup (CLEAR_TCAM / directed diff) handles whatever survives.
    if (nib.switch_health(op->sw) != SwitchHealth::kUp) continue;
    OpStatus status = nib.op_status(op->id);
    // Possibly live: anywhere between "queued for a worker" and "installed".
    // NONE OPs never left the controller and the sequencer will stop
    // scheduling them the moment the current DAG flips.
    if (status == OpStatus::kScheduled || status == OpStatus::kInFlight ||
        status == OpStatus::kSent || status == OpStatus::kDone) {
      Op del;
      del.id = ctx_->op_ids->next();
      del.type = OpType::kDeleteRule;
      del.sw = op->sw;
      del.delete_target = op->id;
      deletions.push_back(del);
    }
  }
  return deletions;
}

void DagScheduler::admit(Dag dag) {
  Nib& nib = *ctx_->nib;
  auto old_id = nib.current_dag();
  bool old_incomplete =
      old_id.has_value() && nib.has_dag(*old_id) && !nib.dag_is_done(*old_id);
  if (old_id.has_value() && nib.has_dag(*old_id)) {
    std::vector<Op> deletions = stale_deletions(nib.dag(*old_id), dag);
    if (!deletions.empty()) {
      auto st = dag.expand_with(deletions);
      (void)st;
      ZLOG_DEBUG("dag%u: appended %zu stale-OP deletions from dag%u",
                 dag.id().value(), deletions.size(), old_id->value());
    }
  }
  DagId id = dag.id();
  if (ctx_->observability != nullptr) {
    ctx_->observability->dag_admitted(id, dag.all_ops().size());
  }
  nib.clear_dag_done(id);
  nib.put_dag(std::move(dag));

  if (ctx_->config.bugs.overlap_nib_race && old_incomplete) {
    // ODL incident-2 race: the thread still installing the old DAG and the
    // thread admitting this one write the NIB concurrently; for OPs whose
    // switch has in-flight old work, the bookkeeping ends up claiming they
    // are installed although nothing was ever sent.
    const Dag& old_dag = nib.dag(*old_id);
    std::unordered_set<SwitchId> racing;
    for (const Op* op : old_dag.all_ops()) {
      OpStatus status = nib.op_status(op->id);
      if (status == OpStatus::kScheduled || status == OpStatus::kInFlight ||
          status == OpStatus::kSent) {
        racing.insert(op->sw);
      }
    }
    const Dag& incoming = nib.dag(id);
    for (const Op* op : incoming.all_ops()) {
      if (op->type != OpType::kInstallRule || !racing.count(op->sw)) continue;
      nib.set_op_status(op->id, OpStatus::kDone);
      nib.view_add_installed(op->sw, op->id);
      ZLOG_DEBUG("overlap race: op%u falsely recorded as installed",
                 op->id.value());
    }
  }

  nib.set_current_dag(id);
  nib.publish_dag_accepted(id);
}

void DagScheduler::remove(DagId id) {
  Nib& nib = *ctx_->nib;
  if (!nib.has_dag(id)) return;
  // Deleting the current DAG without a replacement: sweep its live OPs out
  // of the data plane with an implicit cleanup DAG (the §3.6 guarantee that
  // the data plane never retains a deleted DAG's routing state).
  if (nib.current_dag() == id) {
    Dag cleanup(DagId(0x40000000u + id.value()));
    const Dag& old_dag = nib.dag(id);
    for (const Op& del :
         stale_deletions(old_dag, cleanup, /*sweep_all_flows=*/true)) {
      (void)cleanup.add_op(del);
    }
    nib.remove_dag(id);
    if (!cleanup.empty()) {
      admit(std::move(cleanup));
    } else {
      nib.set_current_dag(std::nullopt);
    }
  } else {
    nib.remove_dag(id);
  }
}

}  // namespace zenith
