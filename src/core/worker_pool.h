// The OFC Worker Pool (Table 1): workers translate OPs into protocol
// messages and forward them to switches.
//
// Correctness machinery carried over from the verified spec (Listing 3):
//  * consistent sharding — each switch is owned by exactly one worker, so
//    per-switch OP order is preserved end to end (P4) and no two workers
//    ever process the same task (§B concurrency-violation safety);
//  * crash-safe event processing — AckQueueRead / process / AckQueuePop: a
//    crash mid-item re-delivers it on restart;
//  * record-before-act — the worker writes its in-progress slot and the
//    OP's SENT status into the NIB *before* emitting the message (P3);
//    Listing 1's send-before-record bug is available behind a SpecBugs knob.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/component.h"
#include "core/context.h"

namespace zenith {

class Worker : public Component {
 public:
  Worker(CoreContext* ctx, WorkerId id);

  WorkerId worker_id() const { return id_; }

  /// Test observability: true while the (buggy) two-phase discipline holds
  /// a dequeued batch in volatile local state.
  bool holding_popped_op() const { return popped_batch_.has_value(); }

 protected:
  bool try_step() override;
  void on_crash() override;
  void on_restart() override;

 private:
  void forward(const Op& op);
  /// Sends install/delete OPs for one switch as a single kBatch message; a
  /// singleton degenerates to forward() so batch_size=1 keeps the classic
  /// per-OP wire protocol bit for bit.
  void forward_batch(SwitchId sw, const std::vector<Op>& ops);
  void process(const OpBatch& batch);

  CoreContext* ctx_;
  WorkerId id_;
  /// Scratch reused across process() calls to avoid a per-batch allocation.
  std::vector<Op> to_send_;
  /// pop-before-process bug only: the dequeued-but-unprocessed batch lives
  /// in volatile local state for one service step — a crash in that window
  /// loses it (the §3.9 "event processing" error class).
  std::optional<OpBatch> popped_batch_;
};

/// Owns the workers and offers pool-level crash/restart (partial CP failure
/// kills one worker; complete OFC failure kills all of them).
class WorkerPool {
 public:
  explicit WorkerPool(CoreContext* ctx);

  std::size_t size() const { return workers_.size(); }
  Worker& worker(std::size_t i) { return *workers_.at(i); }

  void kick_all();
  void crash_all();
  void restart_all();
  std::vector<Component*> components();

 private:
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace zenith
