// The DE Sequencer (Table 1): "a set of workers that ensure OPs are
// installed in the order the DAG enforces".
//
// Scheduling predicate (the verbatim P2 condition from §F): an OP is
// schedulable iff it (a) belongs to the current DAG, (b) has status NONE
// (not in progress, not installed), (c) every DAG predecessor is DONE, and
// (d) its switch is UP in the NIB (P7: nothing is sent to a failed switch
// until its cleanup completes; the Worker Pool re-checks, this is the
// fast-path gate).
//
// The sequencer keeps no durable state: the current DAG and all OP statuses
// live in the NIB, so a crash + restart (or DE failover) resumes scheduling
// exactly where the NIB says things stand (Theorem F.4's no-deadlock
// argument relies on this rescan).
#pragma once

#include "core/component.h"
#include "core/context.h"

namespace zenith {

class Sequencer : public Component {
 public:
  Sequencer(CoreContext* ctx, std::size_t index);

 protected:
  bool try_step() override;
  void on_restart() override;

 private:
  bool owns_current_dag() const;
  /// Schedules every currently-ready OP; returns how many were scheduled.
  std::size_t schedule_ready_ops(const Dag& dag);
  bool dag_complete(const Dag& dag) const;

  CoreContext* ctx_;
  std::size_t index_;
};

}  // namespace zenith
