// The CommitPump (PR 8, sharded mode only): applies per-shard ACK-commit
// jobs as parallel NIB transactions.
//
// Each service step drains EVERY CommitJob queued at step time from the
// per-shard MPSC stage queues and applies each shard's jobs in FIFO order
// inside one NIB parallel-commit section: serially in ascending shard order
// when commit_threads <= 1, or one lane per shard fanned over a persistent
// thread pool otherwise. Draining the backlog under a single service charge
// is the same amortization commit_ack_batch models for a batch-ACK — the
// pump is one batched NIB transaction per shard per step, which is what
// keeps the ACK-commit stage off the critical path at high load. The serial
// and pooled applications are byte-identical by construction — shards own
// disjoint NIB slices, within a shard jobs apply in queue order, and the
// events produced inside the section are replayed in ascending shard order
// (FIFO within each shard) either way (sharded_nib_test asserts it; the CI
// TSan soak exercises the pool).
//
// Stale filtering: between the Monitoring Server enqueuing a job and the
// pump applying it, a takeover can requeue the op (SENT -> SCHEDULED) or a
// recovery reset can re-arm it. Only ops still SENT commit — the same
// filter the replicated log applies at log-apply time. Jobs survive a pump
// component crash (the queues live in the context and a step is atomic in
// simulated time); an OFC crash clears them, and the takeover requeue of
// SENT OPs regenerates the lost ACK work exactly once.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/executor.h"
#include "core/component.h"
#include "core/context.h"

namespace zenith {

class CommitPump : public Component {
 public:
  explicit CommitPump(CoreContext* ctx);

 protected:
  bool try_step() override;

 private:
  /// One applied batch-ACK: the job's switch plus the ops that survived the
  /// freshness filter. Kept (pre-sized, reused) so the observability pass
  /// after the parallel section can attribute per-op stage records without
  /// the committing threads touching shared sinks.
  struct AppliedBatch {
    SwitchId sw = SwitchId::invalid();
    std::size_t committed = 0;
    std::size_t stale = 0;
    std::vector<Op> fresh;
  };

  CoreContext* ctx_;
  std::unique_ptr<PersistentExecutor> executor_;  // null when serial
  // Per-shard scratch, reused across steps. applied_[s] grows to the
  // high-water job count; applied_used_[s] is how many entries this step
  // filled.
  std::vector<std::vector<CommitJob>> jobs_;
  std::vector<std::vector<AppliedBatch>> applied_;
  std::vector<std::size_t> applied_used_;
};

}  // namespace zenith
