// The Watchdog (Table 1): "monitors all the submodules and restarts them if
// they fail". Partial control-plane failures (Table 3, CP Partial) are
// survivable precisely because every component keeps its durable state in
// the NIB and its work items in ack-pop queues; the Watchdog just has to
// notice and restart.
#pragma once

#include <vector>

#include "core/component.h"
#include "core/context.h"

namespace zenith {

class Watchdog {
 public:
  Watchdog(CoreContext* ctx);

  /// Registers a component for supervision.
  void watch(Component* component);

  /// Starts the periodic scan.
  void start();
  void stop() { running_ = false; }

  std::uint64_t restarts() const { return restarts_; }

 private:
  void scan();

  CoreContext* ctx_;
  std::vector<Component*> watched_;
  bool running_ = false;
  std::uint64_t restarts_ = 0;
};

}  // namespace zenith
