// OpBatchArena: a recycling pool for OpBatch id buffers (PR 8).
//
// The hot path allocates one std::vector<OpId> per OpBatch — built by the
// Sequencer (or enqueue_op / the takeover re-enqueue), carried through the
// NIB OP queue, and destroyed when the Worker acks the batch. At soak scale
// that is one heap round-trip per batch, millions per run. The arena keeps
// retired buffers and hands them back with their capacity intact, so steady
// state does zero allocations: the pool warms up to the pipeline's peak
// in-flight batch count and then every acquire is a recycle.
//
// Recycling is pure capacity reuse — a recycled buffer is cleared before it
// leaves release(), so observable behavior (and every golden fingerprint)
// is unchanged. Simulator-thread only; counters feed bench_micro_primitives
// ("arena.fresh_allocs_fixed_churn" is gated on the committed baseline).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/ids.h"

namespace zenith {

class OpBatchArena {
 public:
  /// Returns an empty buffer: a recycled one (capacity intact) when the
  /// pool has any, else a fresh zero-capacity vector.
  std::vector<OpId> acquire() {
    ++acquires_;
    if (pool_.empty()) {
      ++fresh_allocations_;
      return {};
    }
    std::vector<OpId> buffer = std::move(pool_.back());
    pool_.pop_back();
    return buffer;
  }

  /// Retires a buffer back to the pool. Zero-capacity buffers carry nothing
  /// worth keeping; beyond kMaxPooled the buffer is simply dropped so a
  /// burst can't pin memory forever.
  void release(std::vector<OpId> buffer) {
    if (buffer.capacity() == 0) return;
    if (pool_.size() >= kMaxPooled) return;
    buffer.clear();
    pool_.push_back(std::move(buffer));
    if (pool_.size() > peak_pooled_) peak_pooled_ = pool_.size();
  }

  std::size_t acquires() const { return acquires_; }
  std::size_t fresh_allocations() const { return fresh_allocations_; }
  std::size_t recycled() const { return acquires_ - fresh_allocations_; }
  std::size_t pooled() const { return pool_.size(); }
  std::size_t peak_pooled() const { return peak_pooled_; }

 private:
  static constexpr std::size_t kMaxPooled = 4096;

  std::vector<std::vector<OpId>> pool_;
  std::size_t acquires_ = 0;
  std::size_t fresh_allocations_ = 0;
  std::size_t peak_pooled_ = 0;
};

}  // namespace zenith
