// ZenithController: assembles ZENITH-core (Figure 6).
//
// Ownership: the controller owns the NIB, the shared context (queues), and
// every component. The Fabric (data plane) and Simulator are owned by the
// experiment, since baselines share them.
//
// The same class also hosts the failure-injection surface used throughout
// §6: partial component crashes (Watchdog-recovered), complete OFC/DE
// microservice failures (standby takeover), and planned OFC failover.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/commit_pump.h"
#include "core/context.h"
#include "core/dag_scheduler.h"
#include "core/eventual_pump.h"
#include "core/failover.h"
#include "core/monitoring_server.h"
#include "core/nib_event_handler.h"
#include "core/reply_router.h"
#include "core/sequencer.h"
#include "core/topo_event_handler.h"
#include "core/watchdog.h"
#include "core/worker_pool.h"

namespace zenith {

class ZenithController {
 public:
  /// Classic wiring: controller and data plane share one simulator; the
  /// controller owns a SimBusTransport shim over `fabric`. Byte-identical to
  /// the pre-transport-seam pipeline.
  ZenithController(Simulator* sim, Fabric* fabric, CoreConfig config = {});
  /// Transport wiring: messages cross `transport` (e.g. a SocketTransport in
  /// zenith_controllerd); there is no local Fabric. `sim` still drives the
  /// component service model and must be pumped by the caller.
  ZenithController(Simulator* sim, net::Transport* transport,
                   CoreConfig config = {});

  ZenithController(const ZenithController&) = delete;
  ZenithController& operator=(const ZenithController&) = delete;

  /// Registers all switches in the NIB and starts the Watchdog. Call once
  /// before the simulation runs.
  void start();

  Nib& nib() { return nib_; }
  const Nib& nib() const { return nib_; }
  CoreContext& context() { return ctx_; }
  OpIdAllocator& op_ids() { return op_ids_; }

  /// Attaches (or detaches, with null) an observability bundle to the
  /// context and every component.
  void set_observability(obs::Observability* o);

  // ---- application API -------------------------------------------------------

  /// Submits a DAG (FIFOPut onto the DAG request queue, Listing 4 line 33).
  void submit_dag(Dag dag);
  void delete_dag(DagId id);
  void register_app_sink(NadirFifo<NibEvent>* sink);

  // ---- failure injection -------------------------------------------------------

  std::vector<Component*> components();
  Component* component(const std::string& name);
  /// Partial CP failure: kill one component; the Watchdog revives it.
  void crash_component(const std::string& name);

  /// Complete OFC microservice failure: all OFC components die, their
  /// volatile queues and the controller-side sockets are lost; a standby
  /// instance takes over after config.failover_takeover_delay.
  void crash_ofc();
  /// Complete DE microservice failure, same pattern.
  void crash_de();

  /// Planned OFC failover (Figure 15).
  void planned_ofc_failover(std::function<void(SimTime)> on_done,
                            bool drain_first = true);

  Watchdog& watchdog() { return *watchdog_; }
  FailoverManager& failover_manager() { return *failover_; }
  /// The replicated control plane, or null when CoreConfig::repl disables it
  /// (num_shards == 0).
  repl::ReplicatedControlPlane* repl() { return repl_.get(); }
  const repl::ReplicatedControlPlane* repl() const { return repl_.get(); }

 private:
  void construct(Simulator* sim, CoreConfig config);
  /// The components that die together in a complete OFC microservice
  /// failure: the worker pool plus the ACK/health path (the single
  /// Monitoring Server, or — sharded — the Reply Router, the per-shard
  /// monitoring instances and the Commit Pump), the Topo Event Handler and
  /// the failover manager.
  std::vector<Component*> ofc_components();
  void ofc_takeover();
  void de_takeover();
  /// Re-enqueues every SENT OP accepted by `owned` (null = all) exactly
  /// once, re-coalesced into per-switch batches — the §B sanctioned-
  /// duplicate recovery shared by the OFC standby takeover (all switches)
  /// and per-shard replicated-leader takeover (that shard's switches).
  void requeue_sent_ops(const std::function<bool(SwitchId)>& owned,
                        const char* reason);
  void wire_replication();

  Nib nib_;
  OpIdAllocator op_ids_;
  CoreContext ctx_;
  /// Owned only by the (sim, fabric) constructor; the transport constructor
  /// borrows the caller's backend.
  std::unique_ptr<net::Transport> owned_transport_;
  std::unique_ptr<repl::ReplicatedControlPlane> repl_;

  std::unique_ptr<DagScheduler> dag_scheduler_;
  std::vector<std::unique_ptr<Sequencer>> sequencers_;
  /// Exactly one of the two handler shapes is populated: the single
  /// instance when nib_shards <= 1 (classic wiring, byte-identical to the
  /// pre-sharding pipeline) or one instance per NIB shard otherwise.
  std::unique_ptr<NibEventHandler> nib_event_handler_;
  std::vector<std::unique_ptr<NibEventHandler>> nib_event_handlers_;
  std::unique_ptr<WorkerPool> worker_pool_;
  /// Same duality for the ACK path: the single Monitoring Server, or the
  /// Reply Router + per-shard monitoring instances + Commit Pump pipeline.
  std::unique_ptr<MonitoringServer> monitoring_;
  std::unique_ptr<ReplyRouter> reply_router_;
  std::vector<std::unique_ptr<MonitoringServer>> monitors_;
  std::unique_ptr<CommitPump> commit_pump_;
  std::unique_ptr<TopoEventHandler> topo_handler_;
  std::unique_ptr<FailoverManager> failover_;
  /// The eventual-log apply cursor (PR 10); null in all-strong mode. Not an
  /// OFC component — the log it drains is NIB-resident durable state.
  std::unique_ptr<EventualApplyPump> eventual_pump_;
  std::unique_ptr<Watchdog> watchdog_;
};

}  // namespace zenith
