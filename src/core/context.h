// Shared state wiring for controller components.
//
// Queue placement mirrors the paper's architecture (Table 1, Figure 6):
// queues that cross microservice boundaries live in the NIB and are
// persistent (OPQueueNIB, the DAG request queue, the NIB event queue);
// queues internal to one microservice are volatile and die with it
// (Sequencer wake queue inside the DE; Topo Event Handler queues inside the
// OFC). The fabric's reply/health streams model network sockets into the
// OFC.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/mpsc_queue.h"
#include "common/spsc_ring.h"
#include "core/arena.h"
#include "dag/compiler.h"
#include "dag/dag.h"
#include "dataplane/fabric.h"
#include "net/transport.h"
#include "nib/nib.h"
#include "repl/repl.h"
#include "sim/fifo.h"
#include "sim/simulator.h"

namespace zenith::obs {
class Observability;
}

namespace zenith {

/// App -> DAG Scheduler requests.
struct DagRequest {
  enum class Type : std::uint8_t { kInstall, kDelete };
  Type type = Type::kInstall;
  Dag dag;       // kInstall
  DagId dag_id;  // kDelete
};

/// Deliberate specification-bug switches (§3.9 taxonomy; DESIGN.md §6).
/// All false in a correct ZENITH build. The PR baseline and the trace
/// generators turn individual knobs on to reproduce historical bugs.
struct SpecBugs {
  /// Listing 1: perform the action before recording it in the NIB.
  bool send_before_record = false;
  /// Dequeue events before fully processing them (event loss on crash).
  bool pop_before_process = false;
  /// Figure A.8 / §G: on recovery, mark the switch UP before resetting the
  /// states of its OPs; the reset scan lands `deferred_reset_delay` later
  /// (the Topo Event Handler "computing all the necessary changes" while
  /// the rest of the controller races ahead).
  bool mark_up_before_reset = false;
  SimTime deferred_reset_delay = millis(50);
  /// Skip the CLEAR_TCAM/reset pipeline entirely on switch recovery (PR's
  /// optimistic recovery; inconsistencies are left for reconciliation).
  bool skip_recovery_cleanup = false;
  /// Bypass the Worker Pool and send CLEAR_TCAM directly from the Topo
  /// Event Handler (races with in-flight OPs, violates P6).
  bool direct_clear_tcam = false;
  /// The ODL "incident 2" race (§1.1): when a DAG arrives while the
  /// previous one is still installing, the two scheduling threads race on
  /// the NIB and the later thread's state wins — OPs of the new DAG that
  /// collide with in-flight work get recorded as installed without ever
  /// being sent. The application then believes the correct routes are in
  /// place even though they are not (resolved only by reconciliation).
  bool overlap_nib_race = false;
};

struct CoreConfig {
  std::size_t num_workers = 4;
  std::size_t num_sequencers = 2;
  /// OP batching (the PR-4 throughput lever): the Sequencer coalesces the
  /// ready OPs of one scheduling pass into per-switch batches of at most
  /// this many OPs; a Worker forwards a whole batch as one message and the
  /// switch ACKs it with one batch-ACK that the Monitoring Server commits
  /// in a single indexed NIB transaction. 1 (the default) reproduces the
  /// unbatched pipeline byte-for-byte: every batch is a singleton, pushed
  /// inline in scan order, and singleton batches travel as the classic
  /// per-OP SwitchRequest/SwitchReply.
  ///
  /// Determinism contract across batch sizes (asserted by property_test's
  /// BatchEquivalence sweep): on equal seeds and a failure-free run,
  /// batch_size ∈ {1,4,16,64} produce a byte-identical final NIB state
  /// (Nib::state_fingerprint — statuses, view, health, DAG bookkeeping;
  /// write_count excluded, it is accounting) for any workload, and
  /// additionally an identical per-switch OP delivery order whenever
  /// same-switch concurrent OPs become ready in the same sequencer pass —
  /// guaranteed for the root OPs of a freshly registered DAG, but NOT for
  /// downstream-dependent waves (at batch_size=1 each predecessor ACK lands
  /// at its own jittered instant, spreading readiness across passes; a
  /// batch ACK commits them together). Batching
  /// deliberately changes *simulated timing* — one batch-ACK amortizes the
  /// Monitoring Server's per-reply service step, which is the honest
  /// throughput win bench_soak measures — so timing-sensitive artifacts
  /// (chaos verdict_digest, trace/metrics fingerprints) are only golden at
  /// the default batch_size=1.
  std::size_t batch_size = 1;
  /// Per-step service time of each component type.
  SimTime worker_service = micros(30);
  SimTime sequencer_service = micros(40);
  SimTime monitoring_service = micros(20);
  SimTime topo_handler_service = micros(40);
  SimTime scheduler_service = micros(50);
  SimTime nib_event_service = micros(15);
  /// Watchdog scan period (detects and restarts dead components).
  SimTime watchdog_period = millis(100);
  /// Extra delay for a standby microservice instance to take over.
  SimTime failover_takeover_delay = millis(200);
  /// Planned failover: re-issue role-change requests to switches that have
  /// not acked after this long (role ACKs ride the reply stream and can be
  /// lost to a burst reply drop; without the retry the handoff hangs).
  SimTime role_ack_retry = millis(150);
  /// Replicated control plane (src/repl): num_shards == 0 (the default)
  /// disables replication entirely — nothing constructed, byte-identical
  /// single-instance pipeline. With shards, the install/delete ACK commit
  /// path routes through each shard's replicated log and unplanned leader
  /// failover re-enqueues SENT OPs exactly once.
  repl::ReplConfig repl;
  /// Directed reconciliation (ZENITH-DR, §3.9): on switch recovery, dump
  /// and diff instead of wiping the TCAM.
  bool directed_reconciliation = false;
  /// Sharded hot path (PR 8). 0 or 1 (the default) keeps the classic
  /// single-pipeline wiring byte-identical: one NIB Event Handler draining
  /// the subscribe()-queue, one Monitoring Server on the transport streams,
  /// ACKs committed inline. >= 2 partitions the NIB by switch into that
  /// many shards, each with its own SPSC event ring + NIB Event Handler +
  /// Monitoring Server instance, a Reply Router demuxing the transport
  /// streams per shard, and a CommitPump applying per-shard ACK-commit jobs
  /// from lock-free MPSC stage queues. Simulated-time throughput scales
  /// with the shard count because the per-shard service steps overlap in
  /// sim time; final NIB state is fingerprint-equal to the unsharded run
  /// on chaos-free workloads (sharded_nib_test, bench_soak's equivalence
  /// probe).
  std::size_t nib_shards = 0;
  /// Sharded mode: NIB events one handler instance routes per service step
  /// (the batch amortizes the per-step service charge that saturated the
  /// single unsharded handler).
  std::size_t nib_event_batch = 16;
  /// Sharded mode: transport messages the Reply Router demuxes per step.
  std::size_t reply_route_batch = 16;
  /// Service time of one Reply Router step. Cheap by design: routing is a
  /// hash + queue push, no NIB access.
  SimTime reply_route_service = micros(2);
  /// Service time of one sharded Monitoring Server step. The classic 20us
  /// monitoring_service models ACK validation *plus* the inline NIB commit
  /// transaction; in sharded mode the commit half moves to the CommitPump
  /// (which charges its own service per batched transaction), so the
  /// per-shard monitor charges only the validation/forward half here.
  /// Charging the full 20us again would double-count the commit work the
  /// pump already pays for.
  SimTime monitoring_forward_service = micros(10);
  /// Sharded mode: OS threads applying commit jobs inside a CommitPump
  /// step. 0/1 = apply serially in ascending shard order on the simulator
  /// thread; >= 2 = apply concurrently on a persistent pool. Byte-identical
  /// either way (shards are disjoint and events replay in shard order —
  /// asserted by sharded_nib_test, exercised under TSan in CI).
  std::size_t commit_threads = 0;
  bool sharded() const { return nib_shards >= 2; }
  /// Adaptive per-OP-class consistency (PR 10; see nib/consistency.h). The
  /// default (all-strong) is byte-identical to the pre-knob pipeline:
  /// nothing constructed, no barrier calls, every golden cell unchanged.
  /// With eventual_installs, install-only ACK batches commit into the NIB's
  /// bounded eventual apply log and become visible from the
  /// EventualApplyPump's cursor; strong-class paths (delete release,
  /// recovery resets, CLEAR_TCAM, takeover requeues) barrier first (E2).
  ConsistencyConfig consistency;
  /// Service time of one EventualApplyPump step (applies up to
  /// consistency.apply_batch eventual entries as real NIB transactions).
  SimTime eventual_apply_service = micros(10);
  SpecBugs bugs;
};

/// One OPQueueNIB element: the OPs of one per-switch dispatch unit, in
/// per-switch FIFO order. At batch_size=1 every element is a singleton.
/// Controller-issued OPs (CLEAR_TCAM, DR dumps, takeover requeues) are
/// always pushed as their own batches, never mixed into DAG batches.
struct OpBatch {
  SwitchId sw;
  std::vector<OpId> ops;
};

/// One ACK-commit unit of the sharded pipeline: the acked install/delete
/// OPs of one switch, flowing from that shard's Monitoring Server instance
/// through the shard's MPSC queue to the CommitPump.
struct CommitJob {
  SwitchId sw;
  std::vector<Op> ops;
};

struct CoreContext {
  Simulator* sim = nullptr;
  Nib* nib = nullptr;
  /// The simulated data plane, when this controller runs on the simulator
  /// bus; null under a socket transport (zenith_controllerd has no local
  /// switches). Pipeline components never touch it — they speak through
  /// `transport` — but the experiment harness and tests still reach the
  /// simulated switches here.
  Fabric* fabric = nullptr;
  /// The southbound message seam (never null once the controller is
  /// constructed): SimBusTransport over `fabric`, or a SocketTransport.
  net::Transport* transport = nullptr;
  CoreConfig config;
  OpIdAllocator* op_ids = nullptr;
  /// Optional observability bundle; null = uninstrumented. Components hold
  /// their own copy of this pointer (set_observability), but pipeline code
  /// that only has the context reaches it here.
  obs::Observability* observability = nullptr;
  /// Replicated commit path; null when config.repl.num_shards == 0 (the
  /// Monitoring Server then commits ACKs directly, the pre-replication way).
  repl::ReplicatedControlPlane* repl = nullptr;

  // -- NIB-resident (persistent) queues --------------------------------------
  NadirFifo<DagRequest> dag_request_queue;          // apps -> DAG Scheduler
  std::vector<std::unique_ptr<NadirFifo<OpBatch>>> op_queues;  // OPQueueNIB shards
  NadirFifo<NibEvent> nib_event_queue;              // NIB -> DE event handler

  // -- DE-internal (volatile) ---------------------------------------------------
  std::vector<std::unique_ptr<NadirFifo<NibEvent>>> sequencer_wakeups;

  // -- sharded hot path (PR 8; empty when config.nib_shards <= 1) --------------
  /// Per-shard NIB event rings (NIB-resident, like nib_event_queue: they
  /// survive DE crashes). Lock-free SPSC: NIB publishes, the shard's NIB
  /// Event Handler drains.
  std::vector<std::unique_ptr<SpscRing<NibEvent>>> shard_event_rings;
  /// Per-shard demuxed transport streams (OFC-volatile, like the transport
  /// queues they mirror): the Reply Router routes switch replies and health
  /// events to the owning shard's Monitoring Server instance. Link events
  /// are not switch-keyed; they all route to shard 0.
  std::vector<std::unique_ptr<NadirFifo<SwitchReply>>> shard_replies;
  std::vector<std::unique_ptr<NadirFifo<SwitchHealthEvent>>> shard_health;
  std::vector<std::unique_ptr<NadirFifo<LinkHealthEvent>>> shard_links;
  /// Per-shard ACK-commit job queues into the CommitPump (OFC-volatile:
  /// dropped on OFC crash, regenerated by the takeover requeue). Lock-free
  /// MPSC — single-threaded in the simulator, stress-tested concurrently
  /// in queue_test.
  std::vector<std::unique_ptr<MpscQueue<CommitJob>>> commit_queues;
  /// Wakes the CommitPump (set by the controller in sharded mode).
  std::function<void()> kick_commit_pump;
  /// Recycled OpBatch id buffers (all modes; steady state allocates zero
  /// vectors per batch).
  OpBatchArena batch_arena;

  // -- OFC-internal (volatile) --------------------------------------------------
  NadirFifo<SwitchHealthEvent> topo_event_queue;
  NadirFifo<SwitchReply> cleanup_reply_queue;  // CLEAR_TCAM acks + DR dumps
  NadirFifo<SwitchReply> role_reply_queue;     // failover role acks
  NadirFifo<SwitchReply> reconciler_reply_queue;  // PR periodic dumps

  /// While a PR reconciliation batch is applying its NIB transaction, other
  /// components' NIB-touching steps stall until this time (Figure 4b's
  /// serialized-NIB-update bottleneck; zero for ZENITH, which never runs
  /// periodic reconciliation).
  SimTime nib_locked_until = 0;

  /// Set during planned OFC failover: workers stop emitting new OPs so the
  /// ACK stream can drain before the role handoff (Zenith's hitless drain;
  /// the PR baseline skips this and loses in-flight ACKs).
  bool workers_paused = false;
  /// Current OFC master instance number (bumped by failover).
  int ofc_master_instance = 0;
  /// Wakes every worker (set by the controller); the failover manager uses
  /// it when resuming the pool after a drain.
  std::function<void()> kick_workers;

  /// Worker shard that owns a switch: consistent sharding (P4). The switch
  /// id goes through a stable 64-bit mix (splitmix64 finalizer) before the
  /// modulus so that structured id layouts (fat-tree pods are id-contiguous)
  /// spread evenly over the pool instead of aliasing onto a few workers.
  /// The mix is a fixed function of the id alone — no process state — so
  /// shard ownership is identical across runs, platforms and restarts.
  std::size_t shard_of(SwitchId sw) const {
    std::uint64_t x = static_cast<std::uint64_t>(sw.value()) +
                      0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % config.num_workers);
  }
  NadirFifo<OpBatch>& op_queue_for(SwitchId sw) {
    return *op_queues.at(shard_of(sw));
  }
  /// Pushes one OP as its own batch (the non-sequencer entry points: cleanup
  /// OPs, directed-reconciliation deletes, takeover requeues, PR re-issues).
  /// The id buffer comes from the arena; the Worker recycles it on ack.
  void enqueue_op(SwitchId sw, OpId id) {
    std::vector<OpId> ops = batch_arena.acquire();
    ops.push_back(id);
    op_queue_for(sw).push(OpBatch{sw, std::move(ops)});
  }
  std::size_t sequencer_of(DagId dag) const {
    return dag.value() % config.num_sequencers;
  }
  /// NIB shard that owns a switch (the same stable mix as shard_of, modulo
  /// nib_shards). Always 0 in unsharded mode.
  std::size_t nib_shard_of(SwitchId sw) const {
    return Nib::shard_slot(sw, config.nib_shards);
  }
};

}  // namespace zenith
