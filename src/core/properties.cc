#include "core/properties.h"

#include <sstream>

namespace zenith {

void DagOrderChecker::attach(Fabric& fabric) {
  fabric.set_install_observer(
      [this](SwitchId sw, OpId op, SimTime t) { on_install(sw, op, t); });
}

void DagOrderChecker::register_dag(const Dag& dag) {
  for (OpId id : dag.op_ids()) {
    if (dag.op(id).type != OpType::kInstallRule) continue;
    EdgeInfo info;
    info.dag = dag.id();
    for (OpId pred : dag.predecessors(id)) {
      // Only install->install edges constrain data-plane order; a deletion
      // predecessor completes in the controller's pipeline, not as an
      // install event.
      if (dag.op(pred).type == OpType::kInstallRule) {
        info.predecessors.push_back(pred);
      }
    }
    edges_[id] = std::move(info);
  }
}

void DagOrderChecker::on_install(SwitchId sw, OpId op, SimTime t) {
  ++installs_observed_;
  ++install_count_[op];
  if (!first_install_.count(op)) first_install_[op] = t;

  auto it = edges_.find(op);
  if (it == edges_.end()) return;
  for (OpId pred : it->second.predecessors) {
    auto pt = first_install_.find(pred);
    if (pt == first_install_.end() || pt->second >= t) {
      std::ostringstream msg;
      msg << "CorrectDAGOrder violated: op" << op.value() << " installed on sw"
          << sw.value() << " at t=" << to_seconds(t) << "s before predecessor op"
          << pred.value()
          << (pt == first_install_.end() ? " (never installed)" : "");
      violations_.push_back(msg.str());
    }
  }
}

std::size_t DuplicateInstallMonitor::duplicate_installs() const {
  std::size_t duplicates = 0;
  for (const auto& [op, count] : checker_->install_count_) {
    if (count > 1) duplicates += count - 1;
  }
  return duplicates;
}

ConsistencyReport ConsistencyChecker::check(std::optional<DagId> target) const {
  ConsistencyReport report;
  // ③ view vs data plane, per healthy switch (a failed switch's state is
  // unobservable and the eventual-consistency claim is conditioned on
  // recovery).
  for (SwitchId sw : nib_->switches()) {
    if (!fabric_->alive(sw)) continue;
    const auto& view = nib_->view_installed(sw);
    std::vector<OpId> actual = fabric_->at(sw).installed_ops();
    for (OpId op : actual) {
      if (!view.count(op)) {
        report.view_consistent = false;
        std::ostringstream msg;
        msg << "hidden entry: op" << op.value() << " installed on sw"
            << sw.value() << " but absent from NIB view";
        report.diffs.push_back(msg.str());
      }
    }
    for (OpId op : view) {
      if (!fabric_->at(sw).has_entry(op)) {
        report.view_consistent = false;
        std::ostringstream msg;
        msg << "phantom entry: NIB view claims op" << op.value() << " on sw"
            << sw.value() << " but the switch does not have it";
        report.diffs.push_back(msg.str());
      }
    }
  }
  // ② target DAG materialized in the data plane.
  if (target.has_value() && nib_->has_dag(*target)) {
    const Dag& dag = nib_->dag(*target);
    for (const Op* op : dag.all_ops()) {
      if (!fabric_->alive(op->sw)) continue;
      if (op->type == OpType::kInstallRule &&
          !fabric_->at(op->sw).has_entry(op->id)) {
        report.dag_installed = false;
        std::ostringstream msg;
        msg << "dag" << target->value() << ": install op" << op->id.value()
            << " missing on sw" << op->sw.value();
        report.diffs.push_back(msg.str());
      }
      if (op->type == OpType::kDeleteRule &&
          fabric_->at(op->sw).has_entry(op->delete_target)) {
        report.dag_installed = false;
        std::ostringstream msg;
        msg << "dag" << target->value() << ": delete op" << op->id.value()
            << " not effective: target op" << op->delete_target.value()
            << " still on sw" << op->sw.value();
        report.diffs.push_back(msg.str());
      }
    }
  }
  return report;
}

bool ConsistencyChecker::hidden_entry_signature() const {
  for (SwitchId sw : nib_->switches()) {
    if (!fabric_->alive(sw)) continue;
    if (nib_->switch_health(sw) != SwitchHealth::kUp) continue;
    for (OpId op : fabric_->at(sw).installed_ops()) {
      if (nib_->has_op(op) && nib_->op_status(op) == OpStatus::kNone) {
        return true;
      }
    }
  }
  return false;
}

bool ConsistencyChecker::converged(DagId target) const {
  if (!nib_->dag_is_done(target)) return false;
  ConsistencyReport report = check(target);
  return report.view_consistent && report.dag_installed;
}

bool ConsistencyChecker::converged_scoped(DagId target) const {
  if (!nib_->dag_is_done(target)) return false;
  if (!nib_->has_dag(target)) return false;
  const Dag& dag = nib_->dag(target);
  for (const Op* op : dag.all_ops()) {
    if (!fabric_->alive(op->sw)) continue;
    if (op->type == OpType::kInstallRule &&
        !fabric_->at(op->sw).has_entry(op->id)) {
      return false;
    }
    if (op->type == OpType::kDeleteRule &&
        fabric_->at(op->sw).has_entry(op->delete_target)) {
      return false;
    }
  }
  // View agreement on touched switches. Cardinality comparison: with the
  // DAG's own entries verified above, a view/table size mismatch is the
  // remaining signature of divergence (hidden or phantom entries), and it
  // avoids scanning thousands of preloaded background entries per poll.
  for (SwitchId sw : dag.touched_switches()) {
    if (!fabric_->alive(sw)) continue;
    if (nib_->view_installed(sw).size() != fabric_->at(sw).table_size()) {
      return false;
    }
  }
  return true;
}

}  // namespace zenith
