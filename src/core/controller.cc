#include "core/controller.h"

#include <unordered_map>

#include "common/logging.h"
#include "net/sim_transport.h"
#include "obs/obs.h"

namespace zenith {

ZenithController::ZenithController(Simulator* sim, Fabric* fabric,
                                   CoreConfig config) {
  ctx_.fabric = fabric;
  owned_transport_ = std::make_unique<net::SimBusTransport>(fabric);
  ctx_.transport = owned_transport_.get();
  construct(sim, std::move(config));
}

ZenithController::ZenithController(Simulator* sim, net::Transport* transport,
                                   CoreConfig config) {
  ctx_.transport = transport;
  construct(sim, std::move(config));
  // A stalled socket sender resumes the pipeline stages it gated: workers
  // first (they hold the head-of-queue batches), then the sequencers (they
  // stopped coalescing new dispatch waves).
  transport->set_resume_callback([this] {
    worker_pool_->kick_all();
    for (auto& s : sequencers_) s->kick();
  });
}

void ZenithController::construct(Simulator* sim, CoreConfig config) {
  ctx_.sim = sim;
  ctx_.nib = &nib_;
  ctx_.config = config;
  ctx_.op_ids = &op_ids_;

  for (std::size_t i = 0; i < config.num_workers; ++i) {
    ctx_.op_queues.push_back(std::make_unique<NadirFifo<OpBatch>>());
  }
  for (std::size_t i = 0; i < config.num_sequencers; ++i) {
    ctx_.sequencer_wakeups.push_back(std::make_unique<NadirFifo<NibEvent>>());
  }

  if (config.sharded()) {
    // Sharded wiring (PR 8): the NIB partitions its OP rows and secondary
    // indexes by switch shard and publishes each shard's events onto a
    // dedicated SPSC ring instead of the single nib_event_queue.
    nib_.configure_sharding(config.nib_shards);
    for (std::size_t s = 0; s < config.nib_shards; ++s) {
      ctx_.shard_event_rings.push_back(std::make_unique<SpscRing<NibEvent>>());
      ctx_.shard_replies.push_back(std::make_unique<NadirFifo<SwitchReply>>());
      ctx_.shard_health.push_back(
          std::make_unique<NadirFifo<SwitchHealthEvent>>());
      ctx_.shard_links.push_back(
          std::make_unique<NadirFifo<LinkHealthEvent>>());
      ctx_.commit_queues.push_back(std::make_unique<MpscQueue<CommitJob>>());
    }
  } else {
    nib_.subscribe(&ctx_.nib_event_queue);
  }

  dag_scheduler_ = std::make_unique<DagScheduler>(&ctx_);
  for (std::size_t i = 0; i < config.num_sequencers; ++i) {
    sequencers_.push_back(std::make_unique<Sequencer>(&ctx_, i));
  }
  if (config.sharded()) {
    for (std::size_t s = 0; s < config.nib_shards; ++s) {
      auto handler = std::make_unique<NibEventHandler>(&ctx_, s);
      NibEventHandler* h = handler.get();
      nib_.set_shard_ring(s, ctx_.shard_event_rings[s].get(),
                          [h] { h->kick(); });
      nib_event_handlers_.push_back(std::move(handler));
    }
  } else {
    nib_event_handler_ = std::make_unique<NibEventHandler>(&ctx_);
  }
  worker_pool_ = std::make_unique<WorkerPool>(&ctx_);
  if (config.sharded()) {
    reply_router_ = std::make_unique<ReplyRouter>(&ctx_);
    for (std::size_t s = 0; s < config.nib_shards; ++s) {
      monitors_.push_back(std::make_unique<MonitoringServer>(&ctx_, s));
    }
    commit_pump_ = std::make_unique<CommitPump>(&ctx_);
    ctx_.kick_commit_pump = [this] { commit_pump_->kick(); };
  } else {
    monitoring_ = std::make_unique<MonitoringServer>(&ctx_);
  }
  topo_handler_ = std::make_unique<TopoEventHandler>(&ctx_);
  failover_ = std::make_unique<FailoverManager>(&ctx_);
  // Adaptive consistency (PR 10): the NIB learns the classification knob
  // either way (all-strong keeps its eventual log permanently empty); the
  // apply pump exists only when some class is eventual.
  nib_.configure_consistency(config.consistency);
  if (config.consistency.any_eventual()) {
    eventual_pump_ = std::make_unique<EventualApplyPump>(&ctx_);
  }
  ctx_.kick_workers = [this] { worker_pool_->kick_all(); };
  watchdog_ = std::make_unique<Watchdog>(&ctx_);
  for (Component* c : components()) watchdog_->watch(c);
  if (config.repl.num_shards > 0) wire_replication();
}

void ZenithController::wire_replication() {
  repl_ = std::make_unique<repl::ReplicatedControlPlane>(ctx_.sim,
                                                         ctx_.config.repl);
  ctx_.repl = repl_.get();
  // NIB apply path: only the acting shard leader applies committed entries,
  // in log order. An entry can legally outlive its OP's freshness — the
  // switch may have failed and had the OP reset to NONE, or a takeover may
  // have requeued it (SCHEDULED) while the first ACK sat uncommitted — so
  // only OPs still SENT commit; stale ones are skipped (the level-triggered
  // pipeline re-drives them), and DONE duplicates are naturally idempotent.
  repl_->set_apply([this](std::size_t, const repl::LogEntry& entry) {
    // Quorum-log entries are strong-class: in eventual mode only deletes
    // (and mixed batches) travel through the log, and their apply must not
    // overtake pending eventual installs it may depend on (E2).
    if (ctx_.config.consistency.any_eventual()) nib_.strong_barrier();
    std::vector<Op> fresh;
    fresh.reserve(entry.ops.size());
    for (const Op& op : entry.ops) {
      if (nib_.has_op(op.id) && nib_.op_status(op.id) == OpStatus::kSent) {
        fresh.push_back(op);
      } else if (ctx_.observability != nullptr) {
        ctx_.observability->count("repl_stale_log_ops");
      }
    }
    nib_.commit_ack_batch(entry.sw, fresh);
    if (ctx_.observability != nullptr) {
      for (const Op& op : fresh) {
        ctx_.observability->op_stage(
            op.id, "repl", "op-ack",
            "sw=" + std::to_string(entry.sw.value()));
        ctx_.observability->op_closed(op.id, "repl", "done");
      }
      if (!fresh.empty()) {
        ctx_.observability->batch_committed(entry.sw, fresh.size());
      }
    }
  });
  // Unplanned failover: the new (or revived) leader re-enqueues the shard's
  // SENT OPs exactly once — the same machinery the OFC standby takeover
  // uses, scoped to the switches this shard owns.
  repl_->set_on_takeover(
      [this](std::size_t shard, std::uint64_t epoch, const char* reason) {
        ZLOG_DEBUG("repl takeover: shard %zu epoch %llu (%s)", shard,
                   static_cast<unsigned long long>(epoch), reason);
        if (ctx_.observability != nullptr) {
          ctx_.observability->event(
              "controller", "repl-takeover",
              "shard=" + std::to_string(shard) + " epoch=" +
                  std::to_string(epoch) + " reason=" + reason);
        }
        requeue_sent_ops(
            [this, shard](SwitchId sw) { return repl_->shard_of(sw) == shard; },
            "repl-takeover");
      });
  repl_->set_event_hook(
      [this](const std::string& what, const std::string& detail) {
        if (ctx_.observability != nullptr) {
          ctx_.observability->event("repl", what, detail);
        }
      });
}

void ZenithController::start() {
  for (std::uint32_t i = 0; i < ctx_.transport->switch_count(); ++i) {
    nib_.register_switch(SwitchId(i));
  }
  watchdog_->start();
  if (repl_ != nullptr) repl_->start();
}

void ZenithController::set_observability(obs::Observability* o) {
  ctx_.observability = o;
  for (Component* c : components()) c->set_observability(o);
}

void ZenithController::submit_dag(Dag dag) {
  if (ctx_.observability != nullptr) ctx_.observability->dag_submitted(dag.id());
  DagRequest request;
  request.type = DagRequest::Type::kInstall;
  request.dag = std::move(dag);
  ctx_.dag_request_queue.push(std::move(request));
}

void ZenithController::delete_dag(DagId id) {
  DagRequest request;
  request.type = DagRequest::Type::kDelete;
  request.dag_id = id;
  ctx_.dag_request_queue.push(std::move(request));
}

void ZenithController::register_app_sink(NadirFifo<NibEvent>* sink) {
  // Sharded mode: every handler forwards the app-relevant events of its own
  // shard, so registering with all of them reproduces the classic stream
  // (each event is routed to exactly one shard, so no duplicates).
  if (nib_event_handler_ != nullptr) {
    nib_event_handler_->register_app_sink(sink);
  }
  for (auto& h : nib_event_handlers_) h->register_app_sink(sink);
}

std::vector<Component*> ZenithController::components() {
  std::vector<Component*> out;
  out.push_back(dag_scheduler_.get());
  for (auto& s : sequencers_) out.push_back(s.get());
  if (nib_event_handler_ != nullptr) out.push_back(nib_event_handler_.get());
  for (auto& h : nib_event_handlers_) out.push_back(h.get());
  for (Component* w : worker_pool_->components()) out.push_back(w);
  if (monitoring_ != nullptr) {
    out.push_back(monitoring_.get());
  } else {
    out.push_back(reply_router_.get());
    for (auto& m : monitors_) out.push_back(m.get());
    out.push_back(commit_pump_.get());
  }
  out.push_back(topo_handler_.get());
  out.push_back(failover_.get());
  if (eventual_pump_ != nullptr) out.push_back(eventual_pump_.get());
  return out;
}

Component* ZenithController::component(const std::string& name) {
  for (Component* c : components()) {
    if (c->name() == name) return c;
  }
  return nullptr;
}

void ZenithController::crash_component(const std::string& name) {
  Component* c = component(name);
  if (c != nullptr) c->crash();
}

void ZenithController::crash_ofc() {
  ZLOG_DEBUG("complete OFC failure injected");
  if (ctx_.observability != nullptr) {
    ctx_.observability->event("controller", "ofc-crash");
  }
  // Every OFC component dies and is held for the standby instance.
  for (Component* c : ofc_components()) {
    c->crash();
    c->set_held(true);
  }
  // Volatile OFC queues and controller-side sockets die with the instance.
  // Dropping *in-flight* replies (not just the queued ones) matters: an ACK
  // still on the wire belongs to the dead instance's sockets, and letting it
  // reach the standby would commit an OP the takeover is about to requeue —
  // the requeued copy then gets processed a second time (a DONE->SENT flap;
  // see OfcCrashMidBatchRequeuesExactlyOnce). The planned non-drain failover
  // models the same socket loss the same way.
  ctx_.topo_event_queue.clear();
  ctx_.cleanup_reply_queue.clear();
  ctx_.role_reply_queue.clear();
  ctx_.transport->drop_all_in_flight_replies();
  ctx_.transport->health_events().clear();
  // The demuxed per-shard queues and the ACK-commit jobs are just as
  // volatile as the instance's sockets — an ACK parked in either belongs to
  // the dead instance, and the takeover requeue regenerates that work. The
  // per-shard NIB-event rings are NOT cleared: they mirror nib_event_queue,
  // which is NIB-resident state and survives instance failures.
  for (auto& q : ctx_.shard_replies) q->clear();
  for (auto& q : ctx_.shard_health) q->clear();
  for (auto& q : ctx_.shard_links) q->clear();
  for (auto& q : ctx_.commit_queues) q->clear();
  ctx_.workers_paused = false;
  ctx_.sim->schedule(ctx_.config.failover_takeover_delay,
                     [this] { ofc_takeover(); });
}

std::vector<Component*> ZenithController::ofc_components() {
  std::vector<Component*> ofc = worker_pool_->components();
  if (monitoring_ != nullptr) {
    ofc.push_back(monitoring_.get());
  } else {
    ofc.push_back(reply_router_.get());
    for (auto& m : monitors_) ofc.push_back(m.get());
    ofc.push_back(commit_pump_.get());
  }
  ofc.push_back(topo_handler_.get());
  ofc.push_back(failover_.get());
  return ofc;
}

void ZenithController::ofc_takeover() {
  ZLOG_DEBUG("standby OFC instance taking over");
  if (ctx_.observability != nullptr) {
    ctx_.observability->event("controller", "ofc-takeover");
  }
  // The standby's sockets are established *now*: replies the switches
  // emitted during the outage window (ACKs for requests that were still on
  // the wire when the old instance died) were addressed to the dead
  // instance and never reach this one. Without this second drop they would
  // commit OPs this takeover is about to requeue — the same ghost-ACK race
  // the crash-time drop closes for replies already in flight back then.
  ctx_.transport->drop_all_in_flight_replies();
  for (Component* c : ofc_components()) {
    c->set_held(false);
    c->restart();  // MonitoringServer::on_restart re-syncs switch health
  }
  // OPs whose ACK was lost with the old instance sit in SENT forever unless
  // re-issued; installs and deletes are idempotent by OP id, so the new
  // instance re-sends all of them (§B's sanctioned duplicate case).
  requeue_sent_ops(nullptr, "ofc-takeover");
}

void ZenithController::requeue_sent_ops(
    const std::function<bool(SwitchId)>& owned, const char* reason) {
  // Failover barriers are strong-class (E2): requeueing scans for SENT OPs,
  // and an install whose eventual commit is still pending would read as
  // SENT here — the requeue would flip it to SCHEDULED, re-send it, and the
  // switch would process it a second time while the stale eventual apply is
  // later filtered out. Draining the log first makes the scan see exactly
  // the committed truth.
  if (ctx_.config.consistency.any_eventual()) {
    const std::size_t drained = nib_.strong_barrier();
    if (drained > 0 && ctx_.observability != nullptr) {
      ctx_.observability->event("controller", "eventual-barrier",
                                std::string("reason=") + reason);
    }
  }
  // Each OP is re-enqueued exactly once, re-coalesced into per-switch
  // batches of at most batch_size so the retry traffic keeps the dispatch
  // shape of the run (ops_with_status returns ids sorted, preserving
  // per-switch order).
  const std::size_t batch_size =
      ctx_.config.batch_size == 0 ? 1 : ctx_.config.batch_size;
  std::unordered_map<std::uint32_t, OpBatch> pending;
  std::vector<std::uint32_t> flush_order;
  auto flush = [this](OpBatch& b) {
    if (b.ops.empty()) return;
    SwitchId sw = b.sw;
    ctx_.op_queue_for(sw).push(OpBatch{sw, std::move(b.ops)});
    b.ops.clear();
  };
  const std::string detail = std::string("reason=") + reason;
  for (OpId id : nib_.ops_with_status(OpStatus::kSent)) {
    const Op& op = nib_.op(id);
    if (owned && !owned(op.sw)) continue;
    nib_.set_op_status(id, OpStatus::kScheduled);
    if (ctx_.observability != nullptr) {
      ctx_.observability->op_stage(id, "controller", "op-requeue", detail);
    }
    OpBatch& batch = pending[op.sw.value()];
    if (batch.ops.empty()) {
      batch.sw = op.sw;
      flush_order.push_back(op.sw.value());
      // Pooled id buffers: the worker releases them back to the arena after
      // dispatch, same as the sequencer's steady-state batches.
      if (batch.ops.capacity() == 0) batch.ops = ctx_.batch_arena.acquire();
    }
    batch.ops.push_back(id);
    if (batch.ops.size() >= batch_size) flush(batch);
  }
  for (std::uint32_t sw : flush_order) flush(pending[sw]);
}

void ZenithController::crash_de() {
  ZLOG_DEBUG("complete DE failure injected");
  if (ctx_.observability != nullptr) {
    ctx_.observability->event("controller", "de-crash");
  }
  std::vector<Component*> de;
  de.push_back(dag_scheduler_.get());
  for (auto& s : sequencers_) de.push_back(s.get());
  if (nib_event_handler_ != nullptr) de.push_back(nib_event_handler_.get());
  for (auto& h : nib_event_handlers_) de.push_back(h.get());
  for (Component* c : de) {
    c->crash();
    c->set_held(true);
  }
  // The per-shard NIB-event rings, like nib_event_queue itself, are
  // NIB-resident and survive the DE instance — the revived handlers resume
  // draining them.
  for (auto& wakeup : ctx_.sequencer_wakeups) wakeup->clear();
  ctx_.sim->schedule(ctx_.config.failover_takeover_delay,
                     [this] { de_takeover(); });
}

void ZenithController::de_takeover() {
  ZLOG_DEBUG("standby DE instance taking over");
  if (ctx_.observability != nullptr) {
    ctx_.observability->event("controller", "de-takeover");
  }
  std::vector<Component*> de;
  de.push_back(dag_scheduler_.get());
  for (auto& s : sequencers_) de.push_back(s.get());
  if (nib_event_handler_ != nullptr) de.push_back(nib_event_handler_.get());
  for (auto& h : nib_event_handlers_) de.push_back(h.get());
  for (Component* c : de) {
    c->set_held(false);
    c->restart();
  }
}

void ZenithController::planned_ofc_failover(
    std::function<void(SimTime)> on_done, bool drain_first) {
  failover_->request_planned_failover(drain_first, std::move(on_done));
}

}  // namespace zenith
