// The OFC Topo Event Handler: owns every switch-health transition in the
// NIB and orchestrates the switch-recovery pipeline of Figure A.5:
//
//   failure  -> mark the switch DOWN immediately (P8(1)); leave OP states
//               untouched (P7 freeze-on-failure);
//   recovery -> mark RECOVERING, issue CLEAR_TCAM *through the Worker Pool*
//               (P6 — bypassing it would race in-flight OPs), and only when
//               the CLEAR ACK arrives: first reset all of the switch's OP
//               states, then mark the switch UP (P8(2); the §G / Figure A.8
//               counterexample is exactly this ordering reversed, available
//               behind SpecBugs::mark_up_before_reset).
//
// ZENITH-DR (§3.9 "Directed Reconciliation") replaces the wipe with a
// targeted dump-and-diff of just the recovered switch.
#pragma once

#include <optional>
#include <vector>

#include "core/component.h"
#include "core/context.h"

namespace zenith {

class TopoEventHandler : public Component {
 public:
  explicit TopoEventHandler(CoreContext* ctx);

 protected:
  bool try_step() override;
  void on_crash() override;
  void on_restart() override;

 private:
  bool process_health_event();
  bool process_cleanup_reply();
  bool process_deferred_reset();

  void handle_failure(SwitchId sw);
  void handle_recovery(SwitchId sw);
  void issue_cleanup(SwitchId sw);
  /// Reset all OP state for `sw` and mark it UP (the order depends on the
  /// mark_up_before_reset bug knob).
  void finalize_recovery(SwitchId sw);
  void reset_switch_ops(SwitchId sw);
  void apply_directed_diff(const SwitchReply& dump);
  /// True when a newer cleanup OP for `sw` is still outstanding.
  bool newer_cleanup_pending(SwitchId sw, OpId acked) const;

  CoreContext* ctx_;
  /// Bug-mode only: switches whose OP reset was deferred past the UP write,
  /// with the time the (slow) reset computation completes.
  std::vector<std::pair<SwitchId, SimTime>> deferred_resets_;
};

}  // namespace zenith
