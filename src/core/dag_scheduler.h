// The DE DAG Scheduler (Table 1): admits application DAG requests, assigns
// them to a Sequencer, and "ensures stale DAGs are deleted properly".
//
// The stale-OP sweep is the §3.3 requirement: when a new DAG replaces one
// whose OPs are still in flight, any old install that the new DAG does not
// itself delete or re-issue gets an explicit deletion appended after the new
// DAG's leaves. Per-switch FIFO (P4) then guarantees the deletion lands
// after the straggler install — the "A:B overwrites A:C after the third DAG
// completes" hazard cannot occur.
#pragma once

#include "core/component.h"
#include "core/context.h"

namespace zenith {

class DagScheduler : public Component {
 public:
  explicit DagScheduler(CoreContext* ctx);

 protected:
  bool try_step() override;

 private:
  void admit(Dag dag);
  void remove(DagId id);
  /// Deletion OPs for every possibly-live install of `old_dag` that
  /// `incoming` neither deletes nor re-issues. On a DAG *transition* only
  /// flows the incoming DAG re-programs are swept (the §3.3 hazard); on an
  /// explicit DAG *deletion* (`sweep_all_flows`) everything goes.
  std::vector<Op> stale_deletions(const Dag& old_dag, const Dag& incoming,
                                  bool sweep_all_flows = false);

  CoreContext* ctx_;
};

}  // namespace zenith
