#include "core/reply_router.h"

#include <algorithm>

namespace zenith {

ReplyRouter::ReplyRouter(CoreContext* ctx)
    : Component(ctx->sim, "reply_router", ctx->config.reply_route_service),
      ctx_(ctx) {
  ctx_->transport->replies().set_wake_callback([this] { kick(); });
  ctx_->transport->health_events().set_wake_callback([this] { kick(); });
  ctx_->transport->link_events().set_wake_callback([this] { kick(); });
}

bool ReplyRouter::try_step() {
  const std::size_t budget =
      std::max<std::size_t>(1, ctx_->config.reply_route_batch);
  bool did_work = false;
  for (std::size_t i = 0; i < budget; ++i) {
    // Same priority order as the classic Monitoring Server: health first,
    // then links, then replies.
    NadirFifo<SwitchHealthEvent>& health = ctx_->transport->health_events();
    if (!health.empty()) {
      SwitchHealthEvent event = health.peek();
      ctx_->shard_health[ctx_->nib_shard_of(event.sw)]->push(event);
      health.ack_pop();
      did_work = true;
      continue;
    }
    NadirFifo<LinkHealthEvent>& links = ctx_->transport->link_events();
    if (!links.empty()) {
      LinkHealthEvent event = links.peek();
      ctx_->shard_links[0]->push(event);  // links are not switch-keyed
      links.ack_pop();
      did_work = true;
      continue;
    }
    NadirFifo<SwitchReply>& replies = ctx_->transport->replies();
    if (!replies.empty()) {
      SwitchReply reply = replies.peek();
      ctx_->shard_replies[ctx_->nib_shard_of(reply.sw)]->push(std::move(reply));
      replies.ack_pop();
      did_work = true;
      continue;
    }
    break;
  }
  return did_work;
}

}  // namespace zenith
