#include "core/commit_pump.h"

#include <algorithm>
#include <string>

#include "obs/obs.h"

namespace zenith {

CommitPump::CommitPump(CoreContext* ctx)
    : Component(ctx->sim, "commit_pump", ctx->config.monitoring_service),
      ctx_(ctx) {
  const std::size_t shards = ctx->config.nib_shards;
  jobs_.resize(shards);
  applied_.resize(shards);
  applied_used_.assign(shards, 0);
  if (ctx->config.commit_threads >= 2) {
    executor_ = std::make_unique<PersistentExecutor>(
        std::min(ctx->config.commit_threads, shards));
  }
}

bool CommitPump::try_step() {
  const std::size_t shards = jobs_.size();
  bool any = false;
  for (std::size_t s = 0; s < shards; ++s) {
    // Drain the whole backlog queued at step time: the step applies it as
    // one batched NIB transaction per shard (see header). Jobs pushed by
    // later simulator events belong to the next service step.
    jobs_[s].clear();
    while (auto job = ctx_->commit_queues[s]->try_pop()) {
      jobs_[s].push_back(std::move(*job));
      any = true;
    }
  }
  if (!any) return false;

  Nib& nib = *ctx_->nib;
  // Eventual mode (PR 10): install-only batches never reach the commit
  // queues (they route to the eventual log at the monitor), so every job
  // here carries a delete — strong-class. Barriers are illegal inside the
  // parallel section (pool threads), so drain the eventual log up front.
  if (ctx_->config.consistency.any_eventual()) nib.strong_barrier();
  auto apply_shard = [&](std::size_t s) {
    applied_used_[s] = 0;
    for (const CommitJob& job : jobs_[s]) {
      if (applied_[s].size() <= applied_used_[s]) applied_[s].emplace_back();
      AppliedBatch& batch = applied_[s][applied_used_[s]++];
      batch.sw = job.sw;
      batch.stale = 0;
      batch.fresh.clear();
      for (const Op& op : job.ops) {
        // Same freshness rule as the replicated log's apply path: an ACK
        // can outlive its OP's SENT state (takeover requeue, recovery
        // reset); only OPs still SENT commit, the level-triggered pipeline
        // re-drives the rest.
        if (nib.has_op(op.id) && nib.op_status(op.id) == OpStatus::kSent) {
          batch.fresh.push_back(op);
        } else {
          ++batch.stale;
        }
      }
      batch.committed = nib.commit_ack_batch(job.sw, batch.fresh);
    }
  };

  nib.begin_parallel_commits();
  if (executor_ != nullptr) {
    executor_->run(shards, apply_shard);
  } else {
    for (std::size_t s = 0; s < shards; ++s) apply_shard(s);
  }
  nib.end_parallel_commits();  // replays events + ring wakes in shard order

  if (ctx_->observability != nullptr) {
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::size_t b = 0; b < applied_used_[s]; ++b) {
        const AppliedBatch& batch = applied_[s][b];
        for (std::size_t i = 0; i < batch.stale; ++i) {
          ctx_->observability->count("commit_stale_ops");
        }
        for (const Op& op : batch.fresh) {
          ctx_->observability->op_stage(
              op.id, name(), "op-ack",
              "sw=" + std::to_string(batch.sw.value()));
          ctx_->observability->op_closed(op.id, name(), "done");
        }
        if (batch.committed > 0) {
          ctx_->observability->batch_committed(batch.sw, batch.committed);
        }
      }
    }
  }
  for (auto& shard_jobs : jobs_) shard_jobs.clear();
  return true;
}

}  // namespace zenith
