#include "core/worker_pool.h"

#include <cassert>

#include "common/logging.h"
#include "obs/obs.h"

namespace zenith {

Worker::Worker(CoreContext* ctx, WorkerId id)
    : Component(ctx->sim, "worker" + std::to_string(id.value()),
                ctx->config.worker_service),
      ctx_(ctx),
      id_(id) {
  ctx_->op_queues.at(id.value())->set_wake_callback([this] { kick(); });
}

void Worker::forward(const Op& op) {
  SwitchRequest request;
  request.op = op;
  request.xid = op.id.value();
  switch (op.type) {
    case OpType::kInstallRule:
      request.type = SwitchRequest::Type::kInstall;
      break;
    case OpType::kDeleteRule:
      request.type = SwitchRequest::Type::kDelete;
      break;
    case OpType::kClearTcam:
      request.type = SwitchRequest::Type::kClearTcam;
      break;
    case OpType::kDumpTable:
      request.type = SwitchRequest::Type::kDumpTable;
      break;
  }
  ctx_->transport->send(op.sw, request);
}

void Worker::forward_batch(SwitchId sw, const std::vector<Op>& ops) {
  if (ctx_->observability != nullptr) {
    ctx_->observability->batch_dispatched(sw, ops.size());
  }
  if (ops.size() == 1) {
    forward(ops.front());
    return;
  }
  SwitchRequest request;
  request.type = SwitchRequest::Type::kBatch;
  request.xid = ops.front().id.value();
  request.batch = ops;
  ctx_->transport->send(sw, request);
}

bool Worker::try_step() {
  if (ctx_->workers_paused) return false;
  // Transport backpressure: above the sender's high watermark we leave the
  // head batch in OPQueueNIB (persistent, level-triggered) and sleep; the
  // transport's resume callback kicks the pool when the ring drains. The
  // sim-bus backend never stalls, so this branch is dead in verification
  // runs.
  if (!ctx_->transport->writable()) return false;
  const SpecBugs& bugs = ctx_->config.bugs;
  NadirFifo<OpBatch>& queue = *ctx_->op_queues.at(id_.value());

  if (bugs.pop_before_process) {
    // Buggy two-phase discipline: dequeue now, process on the next step.
    // The batch is held only in volatile local state in between — a crash
    // in that window silently drops it (no NIB record, no queue entry).
    if (popped_batch_.has_value()) {
      OpBatch batch = std::move(*popped_batch_);
      popped_batch_.reset();
      process(batch);
      ctx_->batch_arena.release(std::move(batch.ops));
      return true;
    }
    if (queue.empty()) return false;
    popped_batch_ = queue.pop();
    return true;
  }

  if (queue.empty()) return false;
  process(queue.peek());  // AckQueueRead
  // AckQueuePop — done here (not inside process) so the spent id buffer can
  // be recycled through the batch arena instead of freed.
  OpBatch spent = queue.pop();
  ctx_->batch_arena.release(std::move(spent.ops));
  return true;
}

void Worker::process(const OpBatch& batch) {
  Nib& nib = *ctx_->nib;
  const SpecBugs& bugs = ctx_->config.bugs;

  // Record-before-act, per OP (Listing 3 line 7): each OP's in-progress slot
  // and its SENT status land in the NIB before the message carrying it goes
  // out. The health gate is evaluated per OP, but a sequencer batch targets
  // one switch, so in practice the whole batch goes one way.
  std::vector<Op>& to_send = to_send_;  // member scratch, reused across steps
  to_send.clear();
  to_send.reserve(batch.ops.size());
  for (OpId op_id : batch.ops) {
    const Op& op = nib.op(op_id);
    nib.set_worker_state(id_, op_id);
    // CLEAR_TCAM (and DR dumps) are exempt from the health gate: P7 "the
    // instruction to clear a switch is an exception".
    bool health_exempt =
        op.type == OpType::kClearTcam || op.type == OpType::kDumpTable;
    if (health_exempt || nib.switch_up(op.sw)) {
      if (!bugs.send_before_record) {
        // Listing 3 ordering: UpdateNIBSend, then ForwardOP.
        nib.set_op_status(op_id, OpStatus::kSent);
      }
      to_send.push_back(op);
    } else {
      // Report failure if switch is dead (UpdateNIBFail).
      nib.set_op_status(op_id, OpStatus::kFailedSwitch);
      if (ctx_->observability != nullptr) {
        ctx_->observability->op_closed(op_id, name(), "failed-switch");
      }
    }
  }

  if (!to_send.empty()) {
    forward_batch(batch.sw, to_send);
    if (bugs.send_before_record) {
      // Listing 1 ordering: ForwardOP before UpdateNIBSend. A crash (or a
      // fast ACK) between the two lines leaves the NIB stale.
      for (const Op& op : to_send) {
        nib.set_op_status(op.id, OpStatus::kSent);
      }
    }
    if (ctx_->observability != nullptr) {
      for (const Op& op : to_send) {
        ctx_->observability->op_stage(
            op.id, name(), "op-send", "sw=" + std::to_string(op.sw.value()));
      }
    }
  }

  // Clear the in-progress slot; the caller drops the queue entry
  // (RemoveOPFromQueue) and recycles its id buffer.
  nib.set_worker_state(id_, std::nullopt);
}

void Worker::on_crash() { popped_batch_.reset(); }

void Worker::on_restart() {
  // WorkerPoolStateRecovery (Listing 3 line 4): if the in-progress slot is
  // set we crashed mid-item. The item is still at the head of our queue
  // (ack-pop never ran), so normal processing re-handles it; re-sending an
  // already-sent OP is safe because installs and deletes are idempotent by
  // OP id (§B relaxes at-most-once delivery in exactly this case).
  auto pending = ctx_->nib->worker_state(id_);
  if (pending.has_value()) {
    ZLOG_DEBUG("worker%u recovery: op%u was in progress", id_.value(),
               pending->value());
    ctx_->nib->set_worker_state(id_, std::nullopt);
  }
}

WorkerPool::WorkerPool(CoreContext* ctx) {
  for (std::size_t i = 0; i < ctx->config.num_workers; ++i) {
    workers_.push_back(
        std::make_unique<Worker>(ctx, WorkerId(static_cast<std::uint32_t>(i))));
  }
}

void WorkerPool::kick_all() {
  for (auto& w : workers_) w->kick();
}

void WorkerPool::crash_all() {
  for (auto& w : workers_) w->crash();
}

void WorkerPool::restart_all() {
  for (auto& w : workers_) w->restart();
}

std::vector<Component*> WorkerPool::components() {
  std::vector<Component*> out;
  out.reserve(workers_.size());
  for (auto& w : workers_) out.push_back(w.get());
  return out;
}

}  // namespace zenith
