#include "core/worker_pool.h"

#include <cassert>

#include "common/logging.h"
#include "obs/obs.h"

namespace zenith {

Worker::Worker(CoreContext* ctx, WorkerId id)
    : Component(ctx->sim, "worker" + std::to_string(id.value()),
                ctx->config.worker_service),
      ctx_(ctx),
      id_(id) {
  ctx_->op_queues.at(id.value())->set_wake_callback([this] { kick(); });
}

void Worker::forward(const Op& op) {
  SwitchRequest request;
  request.op = op;
  request.xid = op.id.value();
  switch (op.type) {
    case OpType::kInstallRule:
      request.type = SwitchRequest::Type::kInstall;
      break;
    case OpType::kDeleteRule:
      request.type = SwitchRequest::Type::kDelete;
      break;
    case OpType::kClearTcam:
      request.type = SwitchRequest::Type::kClearTcam;
      break;
    case OpType::kDumpTable:
      request.type = SwitchRequest::Type::kDumpTable;
      break;
  }
  ctx_->fabric->send(op.sw, request);
}

bool Worker::try_step() {
  if (ctx_->workers_paused) return false;
  const SpecBugs& bugs = ctx_->config.bugs;
  NadirFifo<OpId>& queue = *ctx_->op_queues.at(id_.value());

  if (bugs.pop_before_process) {
    // Buggy two-phase discipline: dequeue now, process on the next step.
    // The OP is held only in volatile local state in between — a crash in
    // that window silently drops it (no NIB record, no queue entry).
    if (popped_op_.has_value()) {
      OpId op_id = *popped_op_;
      popped_op_.reset();
      process(op_id);
      return true;
    }
    if (queue.empty()) return false;
    popped_op_ = queue.pop();
    return true;
  }

  if (queue.empty()) return false;
  process(queue.peek());  // AckQueueRead
  return true;
}

void Worker::process(OpId op_id) {
  NadirFifo<OpId>& queue = *ctx_->op_queues.at(id_.value());
  Nib& nib = *ctx_->nib;
  const SpecBugs& bugs = ctx_->config.bugs;
  const Op& op = nib.op(op_id);

  // Record in-progress state first (Listing 3 line 7) so crash recovery can
  // see a half-processed OP.
  nib.set_worker_state(id_, op_id);

  // CLEAR_TCAM (and DR dumps) are exempt from the health gate: P7 "the
  // instruction to clear a switch is an exception".
  bool health_exempt =
      op.type == OpType::kClearTcam || op.type == OpType::kDumpTable;
  if (health_exempt || nib.switch_up(op.sw)) {
    if (bugs.send_before_record) {
      // Listing 1 ordering: ForwardOP before UpdateNIBSend. A crash (or a
      // fast ACK) between the two lines leaves the NIB stale.
      forward(op);
      nib.set_op_status(op_id, OpStatus::kSent);
    } else {
      // Listing 3 ordering: UpdateNIBSend, then ForwardOP.
      nib.set_op_status(op_id, OpStatus::kSent);
      forward(op);
    }
    if (ctx_->observability != nullptr) {
      ctx_->observability->op_stage(op_id, name(), "op-send",
                                    "sw=" + std::to_string(op.sw.value()));
    }
  } else {
    // Report failure if switch is dead (UpdateNIBFail).
    nib.set_op_status(op_id, OpStatus::kFailedSwitch);
    if (ctx_->observability != nullptr) {
      ctx_->observability->op_closed(op_id, name(), "failed-switch");
    }
  }

  // Clear the in-progress slot, then drop the queue entry (RemoveOPFromQueue).
  nib.set_worker_state(id_, std::nullopt);
  if (!bugs.pop_before_process) queue.ack_pop();
}

void Worker::on_crash() { popped_op_.reset(); }

void Worker::on_restart() {
  // WorkerPoolStateRecovery (Listing 3 line 4): if the in-progress slot is
  // set we crashed mid-item. The item is still at the head of our queue
  // (ack-pop never ran), so normal processing re-handles it; re-sending an
  // already-sent OP is safe because installs and deletes are idempotent by
  // OP id (§B relaxes at-most-once delivery in exactly this case).
  auto pending = ctx_->nib->worker_state(id_);
  if (pending.has_value()) {
    ZLOG_DEBUG("worker%u recovery: op%u was in progress", id_.value(),
               pending->value());
    ctx_->nib->set_worker_state(id_, std::nullopt);
  }
}

WorkerPool::WorkerPool(CoreContext* ctx) {
  for (std::size_t i = 0; i < ctx->config.num_workers; ++i) {
    workers_.push_back(
        std::make_unique<Worker>(ctx, WorkerId(static_cast<std::uint32_t>(i))));
  }
}

void WorkerPool::kick_all() {
  for (auto& w : workers_) w->kick();
}

void WorkerPool::crash_all() {
  for (auto& w : workers_) w->crash();
}

void WorkerPool::restart_all() {
  for (auto& w : workers_) w->restart();
}

std::vector<Component*> WorkerPool::components() {
  std::vector<Component*> out;
  out.reserve(workers_.size());
  for (auto& w : workers_) out.push_back(w.get());
  return out;
}

}  // namespace zenith
