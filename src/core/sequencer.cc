#include "core/sequencer.h"

#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "obs/obs.h"

namespace zenith {

Sequencer::Sequencer(CoreContext* ctx, std::size_t index)
    : Component(ctx->sim, "sequencer" + std::to_string(index),
                ctx->config.sequencer_service),
      ctx_(ctx),
      index_(index) {
  ctx_->sequencer_wakeups.at(index)->set_wake_callback([this] { kick(); });
}

bool Sequencer::owns_current_dag() const {
  auto current = ctx_->nib->current_dag();
  return current.has_value() && ctx_->sequencer_of(*current) == index_;
}

bool Sequencer::try_step() {
  // Transport backpressure, one stage upstream of the workers: while the
  // socket sender sits above its high watermark there is no point coalescing
  // new dispatch waves — they would only deepen the stalled queues. State is
  // all in the NIB (OPs stay kNone), so resuming is a plain rescan when the
  // transport's drain callback kicks us. Never taken on the sim bus.
  if (!ctx_->transport->writable()) return false;
  // Drain wake hints; all truth lives in the NIB.
  NadirFifo<NibEvent>& wakeups = *ctx_->sequencer_wakeups.at(index_);
  bool had_events = !wakeups.empty();
  while (!wakeups.empty()) wakeups.pop();

  if (!owns_current_dag()) return had_events;
  Nib& nib = *ctx_->nib;
  const Dag& dag = nib.dag(*nib.current_dag());

  std::size_t scheduled = schedule_ready_ops(dag);

  if (dag_complete(dag) && !nib.dag_is_done(dag.id())) {
    // The controller certifies in the NIB that the data plane converged to
    // this DAG (§6 "Metrics" — this is the convergence endpoint).
    nib.mark_dag_done(dag.id());
    nib.publish_dag_done(dag.id());
    if (ctx_->observability != nullptr) {
      ctx_->observability->dag_certified(dag.id());
    }
    ZLOG_DEBUG("dag%u certified done", dag.id().value());
    return true;
  }
  return had_events || scheduled > 0;
}

std::size_t Sequencer::schedule_ready_ops(const Dag& dag) {
  Nib& nib = *ctx_->nib;
  const std::size_t batch_size =
      ctx_->config.batch_size == 0 ? 1 : ctx_->config.batch_size;
  std::size_t scheduled = 0;
  // Per-switch pending batch of this scan, flushed when full and again at
  // scan end in first-seen switch order. At batch_size=1 every OP flushes
  // inline at the point the unbatched code pushed it, so the queue contents
  // (as a flat OP sequence) are byte-identical to the pre-batching pipeline
  // and the scan-end sweep never finds leftovers.
  std::unordered_map<std::uint32_t, OpBatch> pending;
  std::vector<std::uint32_t> flush_order;
  auto flush = [this](OpBatch& b) {
    if (b.ops.empty()) return;
    SwitchId sw = b.sw;
    ctx_->op_queue_for(sw).push(OpBatch{sw, std::move(b.ops)});
    b.ops.clear();
  };
  const bool eventual_mode = ctx_->config.consistency.any_eventual();
  for (OpId id : dag.op_ids()) {
    if (nib.op_status(id) != OpStatus::kNone) continue;
    // Strong-class release check (PR 10, E2): a DAG-ordered delete must
    // never release against a predecessor view the eventual log has not
    // yet published — its readiness decision is exactly the ordering the
    // §3.3 proof needs. Drain pending eventual commits before evaluating a
    // delete's predecessors; install readiness tolerates the bounded lag
    // (a pending pred just stays not-DONE until the apply cursor lands).
    if (eventual_mode && nib.op(id).type == OpType::kDeleteRule &&
        nib.eventual_pending() > 0) {
      nib.strong_barrier();
    }
    bool ready = true;
    for (OpId pred : dag.predecessors(id)) {
      if (nib.op_status(pred) != OpStatus::kDone) {
        ready = false;
        break;
      }
    }
    if (!ready) continue;
    const Op& op = nib.op(id);
    if (nib.switch_health(op.sw) != SwitchHealth::kUp) continue;  // P7 gate
    nib.set_op_status(id, OpStatus::kScheduled);
    if (ctx_->observability != nullptr) {
      ctx_->observability->op_scheduled(id, dag.id(), op.sw, name());
    }
    OpBatch& batch = pending[op.sw.value()];
    if (batch.ops.empty()) {
      batch.sw = op.sw;
      flush_order.push_back(op.sw.value());
      // Pooled id buffers (PR 8): acquire a recycled vector instead of
      // growing a fresh one; the worker releases it after dispatch.
      if (batch.ops.capacity() == 0) batch.ops = ctx_->batch_arena.acquire();
    }
    batch.ops.push_back(id);
    // A switch that refills after a flush lands in flush_order again; the
    // scan-end sweep tolerates that because flush() skips empty batches.
    if (batch.ops.size() >= batch_size) flush(batch);
    ++scheduled;
  }
  for (std::uint32_t sw : flush_order) flush(pending[sw]);
  return scheduled;
}

bool Sequencer::dag_complete(const Dag& dag) const {
  for (OpId id : dag.op_ids()) {
    if (ctx_->nib->op_status(id) != OpStatus::kDone) return false;
  }
  return true;
}

void Sequencer::on_restart() {
  // Nothing to rebuild: the rescan in try_step derives everything from the
  // NIB. (This is the paper's "state recording and crash recovery" fix —
  // the initial buggy design cached scheduling progress locally.)
}

}  // namespace zenith
