// Runtime monitors for the paper's correctness conditions (§3.3) and the
// auxiliary safety checks of §B.
//
// The TLAPS proof (Appendix F) establishes these for the specification; the
// monitors enforce them dynamically over every simulated execution, which is
// this reproduction's substitute for machine-checked proofs (DESIGN.md §2).
//
//  ① CorrectDAGOrder      — DagOrderChecker (safety, checked online)
//  ② CorrectDAGInstalled  — ConsistencyChecker::dag_installed (checked at
//                            quiescence — the "eventually always" part)
//  ③ CorrectRoutingState  — ConsistencyChecker::view_consistent
//  §B duplicate installs  — DuplicateInstallMonitor (counts; duplicates are
//                            legal only under switch-failure uncertainty)
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "dag/dag.h"
#include "dataplane/fabric.h"
#include "nib/nib.h"

namespace zenith {

/// Checks condition ①: for every DAG edge (r1, r2), the first install of r2
/// happens after the first install of r1.
class DagOrderChecker {
 public:
  /// Hooks the fabric's install observer. Call once, before running.
  void attach(Fabric& fabric);

  /// Registers a DAG whose edges must be respected (call for every DAG the
  /// experiment submits).
  void register_dag(const Dag& dag);

  const std::vector<std::string>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }
  std::size_t installs_observed() const { return installs_observed_; }

 private:
  void on_install(SwitchId sw, OpId op, SimTime t);

  struct EdgeInfo {
    std::vector<OpId> predecessors;
    DagId dag;
  };
  std::unordered_map<OpId, EdgeInfo> edges_;
  std::unordered_map<OpId, SimTime> first_install_;
  std::unordered_map<OpId, std::size_t> install_count_;
  std::vector<std::string> violations_;
  std::size_t installs_observed_ = 0;

  friend class DuplicateInstallMonitor;
};

/// §B: "the controller installs an OP at most once" — relaxed to "at most
/// once unless switch-failure uncertainty forced a re-send". The monitor
/// reports the duplicate count so experiments can assert it is zero in
/// failure-free runs.
class DuplicateInstallMonitor {
 public:
  explicit DuplicateInstallMonitor(const DagOrderChecker* checker)
      : checker_(checker) {}

  std::size_t duplicate_installs() const;

 private:
  const DagOrderChecker* checker_;
};

struct ConsistencyReport {
  bool view_consistent = true;   // ③: R_c == G_d on healthy switches
  bool dag_installed = true;     // ②: target DAG's installs present in G_d
  std::vector<std::string> diffs;
};

/// Ground-truth comparison between the NIB and the actual data plane. The
/// harness uses it both to validate Zenith (must hold at quiescence) and to
/// detect PR's windows of inconsistency.
class ConsistencyChecker {
 public:
  ConsistencyChecker(const Nib* nib, const Fabric* fabric)
      : nib_(nib), fabric_(fabric) {}

  /// Full report; `target` adds the condition-② check for that DAG.
  ConsistencyReport check(std::optional<DagId> target) const;

  /// Convergence predicate used by the evaluation: the controller certified
  /// the DAG in the NIB *and* the ground truth agrees.
  bool converged(DagId target) const;

  /// Like converged(), but ground truth is checked only on the switches the
  /// DAG touches. Equivalent for convergence purposes (the DAG's fate is
  /// decided there) and O(DAG) instead of O(network) — the probe the
  /// large-topology benchmarks poll at millisecond granularity.
  bool converged_scoped(DagId target) const;

  /// The §G hidden-entry signature: a rule present on a healthy (and
  /// NIB-believed-UP) switch whose OP the NIB records as never installed
  /// (status NONE). Unlike transient in-flight divergence, this state means
  /// the controller has no record of the rule at all — the Figure 2 hazard.
  bool hidden_entry_signature() const;

 private:
  const Nib* nib_;
  const Fabric* fabric_;
};

}  // namespace zenith
