// The Reply Router (PR 8, sharded mode only): demuxes the transport's three
// inbound streams onto the per-shard Monitoring Server queues.
//
// In the unsharded wiring the single Monitoring Server consumes the
// transport streams directly. With N monitoring instances something must
// terminate the (single) southbound channel and fan messages out by switch
// ownership; this component is that stage — a pure hash-and-push demux with
// a deliberately tiny service time (no NIB access, no decoding). Replies
// and health events route to shard_of(sw); link events are not switch-keyed
// and all route to shard 0.
//
// Crash behaviour: the transport queues use the peek/ack discipline, so a
// router crash mid-burst loses nothing — the watchdog restart re-drains
// from the same queues (level-triggered, like every other component).
#pragma once

#include "core/component.h"
#include "core/context.h"

namespace zenith {

class ReplyRouter : public Component {
 public:
  explicit ReplyRouter(CoreContext* ctx);

 protected:
  bool try_step() override;

 private:
  CoreContext* ctx_;
};

}  // namespace zenith
