// The DE NIB Event Handler (Table 1): "produces/consumes events for/from
// the NIB and is familiar with NIB semantics".
//
// Unsharded (the classic wiring): one instance drains the NIB's persistent
// event queue and fans every event out to all Sequencer wake queues and to
// registered application sinks. Sequencers treat the events purely as wake
// hints and re-derive truth from the NIB, so losing the volatile wake
// queues on a DE failure is harmless — the restart rescan covers it.
//
// Sharded (PR 8): one instance per NIB shard drains that shard's lock-free
// SPSC ring, up to nib_event_batch events per service step, and routes
// selectively — scheduling-relevant events (commits, resets, health, DAG
// admission) wake the sequencer that owns the affected DAG instead of
// broadcasting every status blip to every sequencer. The unsharded profile
// showed the single handler saturated (one 15µs step per event) and the
// sequencers burning 40µs wake-drain steps on kScheduled/kSent echoes of
// their own writes; the batch drain and the wake filter remove both.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "core/component.h"
#include "core/context.h"

namespace zenith {

class NibEventHandler : public Component {
 public:
  /// Classic single instance draining ctx->nib_event_queue.
  explicit NibEventHandler(CoreContext* ctx);
  /// Sharded instance ("nib_event_handler<shard>") draining
  /// ctx->shard_event_rings[shard]. The NIB's ring wake hook must be wired
  /// to kick() by the controller.
  NibEventHandler(CoreContext* ctx, std::size_t shard);

  /// Registers an application's event sink; the app sees switch-health and
  /// DAG lifecycle events (§3.6: "the controller correctly notifies
  /// applications of data plane events"). In sharded mode the controller
  /// registers the sink with every instance; each event still reaches the
  /// sink exactly once because each event lives in exactly one ring.
  void register_app_sink(NadirFifo<NibEvent>* sink);

 protected:
  bool try_step() override;

 private:
  static constexpr std::size_t kUnsharded =
      std::numeric_limits<std::size_t>::max();

  void route_sharded(const NibEvent& event);

  CoreContext* ctx_;
  std::size_t shard_ = kUnsharded;
  std::vector<NadirFifo<NibEvent>*> app_sinks_;
};

}  // namespace zenith
