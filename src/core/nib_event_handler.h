// The DE NIB Event Handler (Table 1): "produces/consumes events for/from
// the NIB and is familiar with NIB semantics".
//
// It drains the NIB's (persistent) event queue and fans events out to the
// Sequencer wake queues and to registered application sinks. Sequencers
// treat the events purely as wake hints and re-derive truth from the NIB, so
// losing the volatile wake queues on a DE failure is harmless — the restart
// rescan covers it.
#pragma once

#include <vector>

#include "core/component.h"
#include "core/context.h"

namespace zenith {

class NibEventHandler : public Component {
 public:
  explicit NibEventHandler(CoreContext* ctx);

  /// Registers an application's event sink; the app sees switch-health and
  /// DAG lifecycle events (§3.6: "the controller correctly notifies
  /// applications of data plane events").
  void register_app_sink(NadirFifo<NibEvent>* sink);

 protected:
  bool try_step() override;

 private:
  CoreContext* ctx_;
  std::vector<NadirFifo<NibEvent>*> app_sinks_;
};

}  // namespace zenith
