#include "core/failover.h"

#include "common/logging.h"
#include "obs/obs.h"

namespace zenith {

FailoverManager::FailoverManager(CoreContext* ctx)
    : Component(ctx->sim, "failover_manager", ctx->config.topo_handler_service),
      ctx_(ctx) {
  ctx_->role_reply_queue.set_wake_callback([this] { kick(); });
}

void FailoverManager::request_planned_failover(
    bool drain_first, std::function<void(SimTime)> on_done) {
  if (in_progress()) return;
  drain_first_ = drain_first;
  on_done_ = std::move(on_done);
  target_instance_ = ctx_->ofc_master_instance + 1;
  acked_.clear();
  if (ctx_->observability != nullptr) {
    ctx_->observability->event(
        name(), "failover-requested",
        "target=" + std::to_string(target_instance_) +
            " drain=" + (drain_first_ ? "1" : "0"));
  }
  if (drain_first_) {
    ctx_->workers_paused = true;
    phase_ = Phase::kDraining;
  } else {
    // PR-style immediate switchover: everything in flight toward the old
    // instance is lost with its sockets.
    ctx_->fabric->drop_all_in_flight_replies();
    begin_role_change();
  }
  kick();
}

void FailoverManager::begin_role_change() {
  phase_ = Phase::kAwaitingRoleAcks;
  if (ctx_->observability != nullptr) {
    ctx_->observability->event(name(), "role-change-begin",
                               "target=" + std::to_string(target_instance_));
  }
  Nib& nib = *ctx_->nib;
  for (SwitchId sw : nib.switches()) {
    if (nib.switch_health(sw) == SwitchHealth::kDown) continue;
    SwitchRequest request;
    request.type = SwitchRequest::Type::kRoleChange;
    request.role = target_instance_;
    request.xid = static_cast<std::uint64_t>(target_instance_) << 32 |
                  sw.value();
    ctx_->fabric->send(sw, request);
  }
}

bool FailoverManager::all_roles_acked() const {
  Nib& nib = *ctx_->nib;
  for (SwitchId sw : nib.switches()) {
    if (nib.switch_health(sw) == SwitchHealth::kDown) continue;
    if (!acked_.count(sw)) return false;
  }
  return true;
}

bool FailoverManager::try_step() {
  switch (phase_) {
    case Phase::kIdle:
      // Drop stray role ACKs from completed handoffs.
      while (!ctx_->role_reply_queue.empty()) ctx_->role_reply_queue.pop();
      return false;
    case Phase::kDraining: {
      // Drained when no OP is stuck between "sent" and "ACK processed".
      if (!ctx_->nib->ops_with_status(OpStatus::kSent).empty()) {
        // Poll again shortly; ACK processing is what unblocks us.
        sim()->schedule(millis(1), [this] { kick(); });
        return false;
      }
      begin_role_change();
      return true;
    }
    case Phase::kAwaitingRoleAcks: {
      bool progressed = false;
      while (!ctx_->role_reply_queue.empty()) {
        SwitchReply reply = ctx_->role_reply_queue.pop();
        if (reply.role == target_instance_) acked_.insert(reply.sw);
        progressed = true;
      }
      if (all_roles_acked()) {
        ctx_->ofc_master_instance = target_instance_;
        ctx_->workers_paused = false;
        if (ctx_->kick_workers) ctx_->kick_workers();  // resume the pool
        phase_ = Phase::kIdle;
        if (ctx_->observability != nullptr) {
          ctx_->observability->event(
              name(), "failover-complete",
              "instance=" + std::to_string(target_instance_));
        }
        ZLOG_DEBUG("planned failover to instance %d complete",
                   target_instance_);
        if (on_done_) on_done_(sim()->now());
        return true;
      }
      return progressed;
    }
  }
  return false;
}

void FailoverManager::on_crash() {
  // A failover-manager crash mid-handoff loses the collected ACK set (it is
  // local state); the restart hook re-issues the role change.
  acked_.clear();
}

void FailoverManager::on_restart() {
  if (phase_ == Phase::kAwaitingRoleAcks) {
    begin_role_change();  // idempotent: switches re-ACK the same role
  } else if (phase_ == Phase::kDraining) {
    kick();
  }
}

}  // namespace zenith
