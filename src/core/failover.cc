#include "core/failover.h"

#include "common/logging.h"
#include "obs/obs.h"

namespace zenith {

FailoverManager::FailoverManager(CoreContext* ctx)
    : Component(ctx->sim, "failover_manager", ctx->config.topo_handler_service),
      ctx_(ctx) {
  ctx_->role_reply_queue.set_wake_callback([this] { kick(); });
}

void FailoverManager::request_planned_failover(
    bool drain_first, std::function<void(SimTime)> on_done) {
  if (in_progress()) {
    // Re-entrant/concurrent request: a second failover while one is in
    // flight must not restart the drain or re-target the role change (the
    // collected ACK set would be split across two targets and the handoff
    // could complete against neither). It is a logged no-op; the caller's
    // on_done is dropped with it.
    ZLOG_DEBUG("planned failover request ignored: handoff to instance %d "
               "already in progress",
               target_instance_);
    if (ctx_->observability != nullptr) {
      ctx_->observability->event(
          name(), "failover-request-ignored",
          "in-progress target=" + std::to_string(target_instance_));
      ctx_->observability->count("failover_requests_ignored");
    }
    return;
  }
  drain_first_ = drain_first;
  on_done_ = std::move(on_done);
  target_instance_ = ctx_->ofc_master_instance + 1;
  acked_.clear();
  if (ctx_->observability != nullptr) {
    ctx_->observability->event(
        name(), "failover-requested",
        "target=" + std::to_string(target_instance_) +
            " drain=" + (drain_first_ ? "1" : "0"));
  }
  if (drain_first_) {
    ctx_->workers_paused = true;
    phase_ = Phase::kDraining;
  } else {
    // PR-style immediate switchover: everything in flight toward the old
    // instance is lost with its sockets.
    ctx_->transport->drop_all_in_flight_replies();
    begin_role_change();
  }
  kick();
}

void FailoverManager::begin_role_change() {
  phase_ = Phase::kAwaitingRoleAcks;
  ++role_change_round_;
  if (ctx_->observability != nullptr) {
    ctx_->observability->event(name(), "role-change-begin",
                               "target=" + std::to_string(target_instance_));
  }
  send_role_changes();
  schedule_role_ack_retry();
}

void FailoverManager::send_role_changes() {
  // Only the switches still owing an ACK: first call covers every healthy
  // switch (acked_ is empty), retries narrow to the stragglers whose ACK
  // was lost (role ACKs ride the reply stream, so a burst reply drop takes
  // them with it).
  Nib& nib = *ctx_->nib;
  for (SwitchId sw : nib.switches()) {
    if (nib.switch_health(sw) == SwitchHealth::kDown) continue;
    if (acked_.count(sw)) continue;
    SwitchRequest request;
    request.type = SwitchRequest::Type::kRoleChange;
    request.role = target_instance_;
    request.xid = static_cast<std::uint64_t>(target_instance_) << 32 |
                  sw.value();
    ctx_->transport->send(sw, request);
  }
}

void FailoverManager::schedule_role_ack_retry() {
  const std::uint64_t round = role_change_round_;
  sim()->schedule(ctx_->config.role_ack_retry, [this, round] {
    if (phase_ != Phase::kAwaitingRoleAcks || round != role_change_round_) {
      return;  // handoff completed or superseded; this timer lapses
    }
    if (ctx_->observability != nullptr) {
      ctx_->observability->event(name(), "role-ack-retry",
                                 "target=" + std::to_string(target_instance_));
      ctx_->observability->count("role_ack_retries");
    }
    send_role_changes();
    schedule_role_ack_retry();
  });
}

bool FailoverManager::all_roles_acked() const {
  Nib& nib = *ctx_->nib;
  for (SwitchId sw : nib.switches()) {
    if (nib.switch_health(sw) == SwitchHealth::kDown) continue;
    if (!acked_.count(sw)) return false;
  }
  return true;
}

bool FailoverManager::try_step() {
  switch (phase_) {
    case Phase::kIdle:
      // Drop stray role ACKs from completed handoffs.
      while (!ctx_->role_reply_queue.empty()) ctx_->role_reply_queue.pop();
      return false;
    case Phase::kDraining: {
      // Drained when no OP is stuck between "sent" and "ACK processed".
      if (!ctx_->nib->ops_with_status(OpStatus::kSent).empty()) {
        // Poll again shortly; ACK processing is what unblocks us.
        sim()->schedule(millis(1), [this] { kick(); });
        return false;
      }
      begin_role_change();
      return true;
    }
    case Phase::kAwaitingRoleAcks: {
      bool progressed = false;
      while (!ctx_->role_reply_queue.empty()) {
        SwitchReply reply = ctx_->role_reply_queue.pop();
        if (reply.role == target_instance_) {
          acked_.insert(reply.sw);
        } else {
          // Stale-epoch ACK: the echo of a previous handoff's (or a
          // superseded retry's) role change. Counting it toward the current
          // target would declare mastership on a switch that still answers
          // to the old instance.
          if (ctx_->observability != nullptr) {
            ctx_->observability->count("stale_role_acks");
          }
        }
        progressed = true;
      }
      if (all_roles_acked()) {
        ctx_->ofc_master_instance = target_instance_;
        ctx_->workers_paused = false;
        if (ctx_->kick_workers) ctx_->kick_workers();  // resume the pool
        phase_ = Phase::kIdle;
        if (ctx_->observability != nullptr) {
          ctx_->observability->event(
              name(), "failover-complete",
              "instance=" + std::to_string(target_instance_));
        }
        ZLOG_DEBUG("planned failover to instance %d complete",
                   target_instance_);
        if (on_done_) on_done_(sim()->now());
        return true;
      }
      return progressed;
    }
  }
  return false;
}

void FailoverManager::on_crash() {
  // A failover-manager crash mid-handoff loses the collected ACK set (it is
  // local state); the restart hook re-issues the role change.
  acked_.clear();
}

void FailoverManager::on_restart() {
  if (phase_ == Phase::kAwaitingRoleAcks) {
    begin_role_change();  // idempotent: switches re-ACK the same role
  } else if (phase_ == Phase::kDraining) {
    kick();
  }
}

}  // namespace zenith
