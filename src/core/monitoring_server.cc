#include "core/monitoring_server.h"

#include "common/logging.h"
#include "obs/obs.h"

namespace zenith {

MonitoringServer::MonitoringServer(CoreContext* ctx)
    : Component(ctx->sim, "monitoring", ctx->config.monitoring_service),
      ctx_(ctx) {
  ctx_->transport->replies().set_wake_callback([this] { kick(); });
  ctx_->transport->health_events().set_wake_callback([this] { kick(); });
  ctx_->transport->link_events().set_wake_callback([this] { kick(); });
}

MonitoringServer::MonitoringServer(CoreContext* ctx, std::size_t shard)
    // Validation/forward half only: the NIB commit this step performed in
    // the classic shape is charged by the CommitPump per batched
    // transaction (see CoreConfig::monitoring_forward_service).
    : Component(ctx->sim, "monitoring" + std::to_string(shard),
                ctx->config.monitoring_forward_service),
      ctx_(ctx),
      shard_(shard) {
  // The Reply Router owns the transport wake callbacks; this instance wakes
  // on its demuxed per-shard queues.
  ctx_->shard_replies[shard]->set_wake_callback([this] { kick(); });
  ctx_->shard_health[shard]->set_wake_callback([this] { kick(); });
  ctx_->shard_links[shard]->set_wake_callback([this] { kick(); });
}

NadirFifo<SwitchReply>& MonitoringServer::reply_queue() {
  return shard_ == kUnsharded ? ctx_->transport->replies()
                              : *ctx_->shard_replies[shard_];
}

NadirFifo<SwitchHealthEvent>& MonitoringServer::health_queue() {
  return shard_ == kUnsharded ? ctx_->transport->health_events()
                              : *ctx_->shard_health[shard_];
}

NadirFifo<LinkHealthEvent>& MonitoringServer::link_queue() {
  return shard_ == kUnsharded ? ctx_->transport->link_events()
                              : *ctx_->shard_links[shard_];
}

bool MonitoringServer::try_step() {
  // Health events first: a failure notification should not queue behind a
  // burst of ACKs (the spec models them as separate processes).
  if (process_health_event()) return true;
  // Link/port transitions update the NIB's topology state directly (the
  // Topo Event Handler owns only switch-level health, whose transitions
  // gate OP scheduling).
  NadirFifo<LinkHealthEvent>& links = link_queue();
  if (!links.empty()) {
    LinkHealthEvent event = links.peek();
    ctx_->nib->set_link_up(event.link, event.up);
    links.ack_pop();
    return true;
  }
  return process_reply();
}

bool MonitoringServer::process_health_event() {
  NadirFifo<SwitchHealthEvent>& events = health_queue();
  if (events.empty()) return false;
  SwitchHealthEvent event = events.peek();
  // Forward to the Topo Event Handler's queue; it owns all health-state
  // transitions in the NIB (P8: a single writer for switch health).
  ctx_->topo_event_queue.push(event);
  events.ack_pop();
  return true;
}

bool MonitoringServer::process_reply() {
  NadirFifo<SwitchReply>& replies = reply_queue();
  if (replies.empty()) return false;
  SwitchReply reply = replies.peek();
  Nib& nib = *ctx_->nib;

  switch (reply.type) {
    case SwitchReply::Type::kAck: {
      const Op& op = reply.op;
      if (!nib.has_op(op.id)) {
        // ACK for an OP this controller incarnation never registered (e.g.
        // state installed by a previous master). Reconciliation owns such
        // entries; recording a status for them would fabricate intent.
        if (ctx_->observability != nullptr) {
          ctx_->observability->count("orphan_acks");
        }
        break;
      }
      if (op.type == OpType::kInstallRule &&
          ctx_->config.consistency.classify(op.type) == OpClass::kEventual) {
        // Eventual-class commit (PR 10): durably recorded now, visible when
        // the apply cursor reaches it. Takes precedence over BOTH the
        // replicated and the sharded commit routes — the eventual log is
        // local and leader-independent, which is exactly the availability
        // win: an install ACK commits even while the owning repl shard has
        // no live leader (the strong path would drop it and wait for the
        // takeover requeue).
        nib.eventual_commit_batch(reply.sw, {op});
        if (ctx_->repl != nullptr) ctx_->repl->note_eventual(reply.sw, 1);
        if (ctx_->observability != nullptr) {
          ctx_->observability->count("eventual_commits");
          ctx_->observability->op_stage(
              op.id, name(), "op-ack-eventual",
              "sw=" + std::to_string(reply.sw.value()));
          ctx_->observability->op_closed(op.id, name(), "done-eventual");
          ctx_->observability->batch_committed(reply.sw, 1);
        }
        break;
      }
      if (ctx_->repl != nullptr && (op.type == OpType::kInstallRule ||
                                    op.type == OpType::kDeleteRule)) {
        // Replicated commit path: the ACK becomes a shard-log entry; the NIB
        // transaction (and the op-closed span) happens when the shard leader
        // applies the committed entry. ClearTcam/dump replies stay on the
        // direct path — they drive the recovery state machine, not R_c.
        ctx_->repl->submit_ack(reply.sw, {op});
        if (ctx_->observability != nullptr) {
          ctx_->observability->count("repl_log_submits");
        }
        break;
      }
      if (shard_ != kUnsharded && (op.type == OpType::kInstallRule ||
                                   op.type == OpType::kDeleteRule)) {
        // Sharded commit path: the NIB transaction (and the op-closed
        // observability) happens when the CommitPump applies the job.
        // ClearTcam/dump replies stay inline — they drive the recovery
        // state machine and are rare.
        ctx_->commit_queues[shard_]->push(CommitJob{reply.sw, {op}});
        if (ctx_->kick_commit_pump) ctx_->kick_commit_pump();
        break;
      }
      // Everything reaching the inline path in eventual mode is
      // strong-class (installs routed to the eventual log above): deletes
      // and CLEAR_TCAM order against installed state, so they must not
      // observe a half-applied eventual prefix (E2).
      if (ctx_->config.consistency.any_eventual()) nib.strong_barrier();
      bool committed = false;
      switch (op.type) {
        case OpType::kInstallRule:
          // P3: always record the ACK.
          nib.set_op_status(op.id, OpStatus::kDone);
          nib.view_add_installed(reply.sw, op.id);
          committed = true;
          break;
        case OpType::kDeleteRule:
          nib.set_op_status(op.id, OpStatus::kDone);
          nib.view_remove_installed(reply.sw, op.delete_target);
          committed = true;
          break;
        case OpType::kClearTcam:
          nib.set_op_status(op.id, OpStatus::kDone);
          nib.view_clear_switch(reply.sw);
          committed = true;
          // The Topo Event Handler finalizes the recovery (reset OPs, mark
          // UP) — Figure A.5 steps 6-8.
          ctx_->cleanup_reply_queue.push(reply);
          break;
        case OpType::kDumpTable:
          break;  // dumps arrive as kDumpReply, not kAck
      }
      if (committed && ctx_->observability != nullptr) {
        // ACK observed and NIB commit recorded: this closes the OP's causal
        // lifecycle span opened at scheduling time.
        ctx_->observability->op_stage(
            op.id, name(), "op-ack", "sw=" + std::to_string(reply.sw.value()));
        ctx_->observability->op_closed(op.id, name(), "done");
        ctx_->observability->batch_committed(reply.sw, 1);
      }
      break;
    }
    case SwitchReply::Type::kBatchAck: {
      // One reply closes a whole dispatch batch: the per-reply service step
      // is amortized over batch.size() OPs, and the NIB commits them as a
      // single transaction. This amortization is the batching throughput
      // win bench_soak measures.
      std::vector<Op> known;
      known.reserve(reply.batch.size());
      for (const Op& op : reply.batch) {
        if (nib.has_op(op.id)) {
          known.push_back(op);
        } else if (ctx_->observability != nullptr) {
          // Same orphan rule as kAck: reconciliation owns entries a previous
          // master installed.
          ctx_->observability->count("orphan_acks");
        }
      }
      bool all_install = !known.empty();
      for (const Op& op : known) {
        if (ctx_->config.consistency.classify(op.type) != OpClass::kEventual) {
          all_install = false;
          break;
        }
      }
      if (all_install) {
        // Eventual-class batch (PR 10): same precedence rule as the
        // singleton kAck — install-only batches commit to the local
        // eventual log, bypassing the quorum log and the commit queues.
        // Mixed batches (any delete) stay on the strong routes below.
        const std::size_t n = known.size();
        if (ctx_->observability != nullptr) {
          for (const Op& op : known) {
            ctx_->observability->op_stage(
                op.id, name(), "op-ack-eventual",
                "sw=" + std::to_string(reply.sw.value()));
            ctx_->observability->op_closed(op.id, name(), "done-eventual");
          }
          ctx_->observability->count("eventual_commits");
          ctx_->observability->batch_committed(reply.sw, n);
        }
        nib.eventual_commit_batch(reply.sw, std::move(known));
        if (ctx_->repl != nullptr) ctx_->repl->note_eventual(reply.sw, n);
        break;
      }
      if (ctx_->repl != nullptr) {
        // Same routing as the singleton kAck: the whole batch becomes one
        // log entry, committed as one NIB transaction at log-apply time.
        if (!known.empty()) ctx_->repl->submit_ack(reply.sw, known);
        if (ctx_->observability != nullptr) {
          ctx_->observability->count("repl_log_submits");
        }
        break;
      }
      if (shard_ != kUnsharded) {
        if (!known.empty()) {
          ctx_->commit_queues[shard_]->push(CommitJob{reply.sw, std::move(known)});
          if (ctx_->kick_commit_pump) ctx_->kick_commit_pump();
        }
        break;
      }
      // Mixed (delete-bearing) batches are strong-class: drain any pending
      // eventual installs before the transaction (E2).
      if (ctx_->config.consistency.any_eventual()) nib.strong_barrier();
      nib.commit_ack_batch(reply.sw, known);
      if (ctx_->observability != nullptr) {
        for (const Op& op : known) {
          ctx_->observability->op_stage(
              op.id, name(), "op-ack",
              "sw=" + std::to_string(reply.sw.value()));
          ctx_->observability->op_closed(op.id, name(), "done");
        }
        // Report what was COMMITTED, not the wire size: orphan entries were
        // filtered out above (counted as orphan_acks), and an all-orphan
        // batch commits nothing — matching the kAck path, which reports
        // batch_committed(sw, 1) only when the single OP actually commits.
        if (!known.empty()) {
          ctx_->observability->batch_committed(reply.sw, known.size());
        }
      }
      break;
    }
    case SwitchReply::Type::kDumpReply:
      if (reply.xid & kReconciliationXidFlag) {
        // Periodic-reconciliation dump (PR baseline).
        ctx_->reconciler_reply_queue.push(reply);
      } else {
        // Directed-reconciliation read — the Topo Event Handler diffs it.
        ctx_->cleanup_reply_queue.push(reply);
      }
      break;
    case SwitchReply::Type::kRoleAck:
      ctx_->role_reply_queue.push(reply);
      break;
  }
  replies.ack_pop();
  return true;
}

void MonitoringServer::on_restart() {
  // Keepalive re-establishment: after an OFC outage the monitoring server
  // re-learns every switch's liveness and synthesizes the events the dead
  // instance missed. Without this, a failure event lost with the old
  // instance would leave the NIB permanently stale.
  Nib& nib = *ctx_->nib;
  for (SwitchId sw : nib.switches()) {
    // Sharded instances re-sync only the switches they own — the peers
    // cover theirs, so the union is exactly the classic single-instance
    // resync without duplicate synthesized events.
    if (shard_ != kUnsharded && ctx_->nib_shard_of(sw) != shard_) continue;
    bool actually_up = ctx_->transport->switch_alive(sw);
    SwitchHealth recorded = nib.switch_health(sw);
    if (!actually_up && recorded != SwitchHealth::kDown) {
      SwitchHealthEvent event;
      event.type = SwitchHealthEvent::Type::kFailure;
      event.sw = sw;
      ctx_->topo_event_queue.push(event);
    } else if (actually_up && recorded == SwitchHealth::kDown) {
      SwitchHealthEvent event;
      event.type = SwitchHealthEvent::Type::kRecovery;
      event.sw = sw;
      ctx_->topo_event_queue.push(event);
    }
  }
}

}  // namespace zenith
