#include "dag/dag.h"

#include <algorithm>
#include <deque>
#include <sstream>

namespace zenith {

const std::vector<OpId> Dag::kNoEdges;

const char* to_string(OpType t) {
  switch (t) {
    case OpType::kInstallRule: return "install";
    case OpType::kDeleteRule: return "delete";
    case OpType::kClearTcam: return "clear_tcam";
    case OpType::kDumpTable: return "dump";
  }
  return "?";
}

const char* to_string(OpStatus s) {
  switch (s) {
    case OpStatus::kNone: return "NONE";
    case OpStatus::kScheduled: return "SCHEDULED";
    case OpStatus::kInFlight: return "IN_FLIGHT";
    case OpStatus::kSent: return "SENT";
    case OpStatus::kDone: return "DONE";
    case OpStatus::kFailedSwitch: return "FAILED_SW";
  }
  return "?";
}

std::string to_string(const Op& op) {
  std::ostringstream out;
  out << "op" << op.id.value() << "(" << to_string(op.type) << " sw"
      << op.sw.value();
  if (op.type == OpType::kInstallRule) {
    out << " dst=sw" << op.rule.dst.value() << " nh=sw"
        << op.rule.next_hop.value() << " prio=" << op.rule.priority;
  } else if (op.type == OpType::kDeleteRule) {
    out << " target=op" << op.delete_target.value();
  }
  out << ")";
  return out.str();
}

Status Dag::add_op(Op op) {
  if (!op.id.valid()) return Error::invalid_argument("op id invalid");
  if (ops_.count(op.id)) return Error::already_exists("duplicate op id");
  order_.push_back(op.id);
  ops_.emplace(op.id, std::move(op));
  return Status::success();
}

Status Dag::add_edge(OpId before, OpId after) {
  if (before == after) return Error::invalid_argument("self edge");
  if (!contains(before) || !contains(after)) {
    return Error::invalid_argument("edge endpoint not a node");
  }
  auto& succs = succ_[before];
  if (std::find(succs.begin(), succs.end(), after) != succs.end()) {
    return Error::already_exists("duplicate edge");
  }
  succs.push_back(after);
  pred_[after].push_back(before);
  ++edge_count_;
  return Status::success();
}

std::vector<const Op*> Dag::all_ops() const {
  std::vector<const Op*> out;
  out.reserve(order_.size());
  for (OpId id : order_) out.push_back(&ops_.at(id));
  return out;
}

const std::vector<OpId>& Dag::successors(OpId id) const {
  auto it = succ_.find(id);
  return it == succ_.end() ? kNoEdges : it->second;
}

const std::vector<OpId>& Dag::predecessors(OpId id) const {
  auto it = pred_.find(id);
  return it == pred_.end() ? kNoEdges : it->second;
}

std::vector<OpId> Dag::roots() const {
  std::vector<OpId> out;
  for (OpId id : order_) {
    if (predecessors(id).empty()) out.push_back(id);
  }
  return out;
}

std::vector<OpId> Dag::leaves() const {
  std::vector<OpId> out;
  for (OpId id : order_) {
    if (successors(id).empty()) out.push_back(id);
  }
  return out;
}

Result<std::vector<OpId>> Dag::topological_order() const {
  std::unordered_map<OpId, std::size_t> indegree;
  for (OpId id : order_) indegree[id] = predecessors(id).size();
  std::deque<OpId> ready;
  for (OpId id : order_) {
    if (indegree[id] == 0) ready.push_back(id);
  }
  std::vector<OpId> out;
  out.reserve(order_.size());
  while (!ready.empty()) {
    OpId cur = ready.front();
    ready.pop_front();
    out.push_back(cur);
    for (OpId next : successors(cur)) {
      if (--indegree[next] == 0) ready.push_back(next);
    }
  }
  if (out.size() != order_.size()) {
    return Error::invalid_argument("DAG contains a cycle");
  }
  return out;
}

Status Dag::expand_with(std::span<const Op> tail) {
  std::vector<OpId> old_leaves = leaves();
  for (const Op& op : tail) {
    auto st = add_op(op);
    if (!st.ok()) return st;
  }
  for (OpId leaf : old_leaves) {
    for (const Op& op : tail) {
      auto st = add_edge(leaf, op.id);
      if (!st.ok()) return st;
    }
  }
  return Status::success();
}

std::vector<std::pair<OpId, OpId>> Dag::edges() const {
  std::vector<std::pair<OpId, OpId>> out;
  out.reserve(edge_count_);
  for (OpId id : order_) {
    for (OpId next : successors(id)) out.emplace_back(id, next);
  }
  return out;
}

std::unordered_set<SwitchId> Dag::touched_switches() const {
  std::unordered_set<SwitchId> out;
  for (OpId id : order_) out.insert(ops_.at(id).sw);
  return out;
}

}  // namespace zenith
