// Protocol-agnostic operations (OPs) — the unit of intent in ZENITH (§3.1).
//
// An OP either installs a flow rule, deletes a previously installed rule, or
// clears a switch's entire TCAM (the recovery cleanup instruction of §F,
// Figure A.5). Applications never speak OpenFlow; the Worker Pool translates
// OPs into protocol messages (§3.2).
#pragma once

#include <string>

#include "common/ids.h"

namespace zenith {

enum class OpType : std::uint8_t {
  kInstallRule,
  kDeleteRule,
  kClearTcam,
  /// Directed-reconciliation read (§3.9): dump one switch's table through
  /// the normal OP pipeline so it serializes behind in-flight OPs (P4).
  kDumpTable,
};

/// A match-action entry: traffic for `dst` (belonging to `flow`) at switch
/// `sw` is forwarded to `next_hop`. Higher `priority` wins (Figure 2's
/// hidden-entry example depends on priority shadowing).
struct FlowRule {
  FlowId flow;
  SwitchId sw;
  SwitchId dst;
  SwitchId next_hop;
  int priority = 0;

  friend bool operator==(const FlowRule&, const FlowRule&) = default;
};

struct Op {
  OpId id;
  OpType type = OpType::kInstallRule;
  SwitchId sw;           // target switch (also rule.sw for installs)
  FlowRule rule;         // valid for kInstallRule
  OpId delete_target;    // valid for kDeleteRule: install-OP to remove

  friend bool operator==(const Op&, const Op&) = default;
};

/// NIB-tracked lifecycle of an OP (§3.9 "state machine design"). The
/// transitional states exist precisely because of the "accounting for delays
/// in operations" class of specification errors: the controller must
/// distinguish "I decided to send" from "I sent" from "switch confirmed".
enum class OpStatus : std::uint8_t {
  kNone,        // not yet scheduled (or reset after switch recovery)
  kScheduled,   // Sequencer enqueued it for the Worker Pool
  kInFlight,    // Worker recorded intent-to-send in the NIB (pre-send, P3)
  kSent,        // Worker handed it to the switch channel
  kDone,        // Monitoring Server observed the ACK
  kFailedSwitch // target switch known dead when the worker processed it
};

const char* to_string(OpType t);
const char* to_string(OpStatus s);
std::string to_string(const Op& op);

}  // namespace zenith
