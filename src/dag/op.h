// Protocol-agnostic operations (OPs) — the unit of intent in ZENITH (§3.1).
//
// An OP either installs a flow rule, deletes a previously installed rule, or
// clears a switch's entire TCAM (the recovery cleanup instruction of §F,
// Figure A.5). Applications never speak OpenFlow; the Worker Pool translates
// OPs into protocol messages (§3.2).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>

#include "common/ids.h"

namespace zenith {

enum class OpType : std::uint8_t {
  kInstallRule,
  kDeleteRule,
  kClearTcam,
  /// Directed-reconciliation read (§3.9): dump one switch's table through
  /// the normal OP pipeline so it serializes behind in-flight OPs (P4).
  kDumpTable,
};

/// A match-action entry: traffic for `dst` (belonging to `flow`) at switch
/// `sw` is forwarded to `next_hop`. Higher `priority` wins (Figure 2's
/// hidden-entry example depends on priority shadowing).
struct FlowRule {
  FlowId flow;
  SwitchId sw;
  SwitchId dst;
  SwitchId next_hop;
  int priority = 0;

  friend bool operator==(const FlowRule&, const FlowRule&) = default;
};

struct Op {
  OpId id;
  OpType type = OpType::kInstallRule;
  SwitchId sw;           // target switch (also rule.sw for installs)
  FlowRule rule;         // valid for kInstallRule
  OpId delete_target;    // valid for kDeleteRule: install-OP to remove

  friend bool operator==(const Op&, const Op&) = default;
};

/// NIB-tracked lifecycle of an OP (§3.9 "state machine design"). The
/// transitional states exist precisely because of the "accounting for delays
/// in operations" class of specification errors: the controller must
/// distinguish "I decided to send" from "I sent" from "switch confirmed".
enum class OpStatus : std::uint8_t {
  kNone,        // not yet scheduled (or reset after switch recovery)
  kScheduled,   // Sequencer enqueued it for the Worker Pool
  kInFlight,    // Worker recorded intent-to-send in the NIB (pre-send, P3)
  kSent,        // Worker handed it to the switch channel
  kDone,        // Monitoring Server observed the ACK
  kFailedSwitch // target switch known dead when the worker processed it
};

/// Number of OpStatus values; sizes the NIB's per-status indexes.
inline constexpr std::size_t kNumOpStatuses = 6;

/// Bitmask over OpStatus values: the NIB's multi-status queries take one of
/// these so an N-status filter costs one index merge instead of nested
/// loops. Implicitly constructible from a single status or a braced list,
/// so call sites read `ops_on_switch(sw, {kSent, kDone})`.
class StatusMask {
 public:
  constexpr StatusMask() = default;
  constexpr StatusMask(OpStatus s) : bits_(bit(s)) {}  // NOLINT: implicit
  constexpr StatusMask(std::initializer_list<OpStatus> statuses) {
    for (OpStatus s : statuses) bits_ |= bit(s);
  }

  constexpr bool contains(OpStatus s) const { return (bits_ & bit(s)) != 0; }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr std::uint8_t bits() const { return bits_; }

  constexpr StatusMask& operator|=(StatusMask other) {
    bits_ |= other.bits_;
    return *this;
  }
  friend constexpr StatusMask operator|(StatusMask a, StatusMask b) {
    a |= b;
    return a;
  }
  friend constexpr bool operator==(StatusMask, StatusMask) = default;

 private:
  static constexpr std::uint8_t bit(OpStatus s) {
    return static_cast<std::uint8_t>(1u << static_cast<unsigned>(s));
  }
  std::uint8_t bits_ = 0;
};
static_assert(kNumOpStatuses <= 8, "StatusMask bits must cover every status");

const char* to_string(OpType t);
const char* to_string(OpStatus s);
std::string to_string(const Op& op);

}  // namespace zenith
