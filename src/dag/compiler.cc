#include "dag/compiler.h"

#include <cassert>

namespace zenith {

int highest_priority(std::span<const Op> ops) {
  int best = 0;
  for (const Op& op : ops) {
    if (op.type == OpType::kInstallRule) {
      best = std::max(best, op.rule.priority);
    }
  }
  return best;
}

CompiledPath compile_single_path(const Path& path, FlowId flow, int priority,
                                 OpIdAllocator& ids) {
  CompiledPath out;
  assert(path.size() >= 2);
  SwitchId dst = path.back();
  // One install OP per forwarding hop (the destination switch itself needs
  // no rule).
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    Op op;
    op.id = ids.next();
    op.type = OpType::kInstallRule;
    op.sw = path[i];
    op.rule = FlowRule{flow, path[i], dst, path[i + 1], priority};
    out.ops.push_back(op);
  }
  // Downstream before upstream: the hop closer to the destination must be
  // installed first, so edges run from ops[i+1] (downstream) to ops[i].
  for (std::size_t i = 0; i + 1 < out.ops.size(); ++i) {
    out.edges.emplace_back(out.ops[i + 1].id, out.ops[i].id);
  }
  return out;
}

std::vector<Op> deletion_ops(std::span<const Op> ops, OpIdAllocator& ids) {
  std::vector<Op> out;
  for (const Op& op : ops) {
    if (op.type != OpType::kInstallRule) continue;
    Op del;
    del.id = ids.next();
    del.type = OpType::kDeleteRule;
    del.sw = op.sw;
    del.delete_target = op.id;
    out.push_back(del);
  }
  return out;
}

Result<Dag> compile_replacement_dag(DagId dag_id,
                                    const std::vector<Path>& new_paths,
                                    const std::vector<FlowId>& flow_of_path,
                                    std::span<const Op> previous_ops,
                                    OpIdAllocator& ids) {
  if (new_paths.size() != flow_of_path.size()) {
    return Error::invalid_argument("paths/flows size mismatch");
  }
  Dag dag(dag_id);
  int priority = highest_priority(previous_ops) + 1;
  for (std::size_t i = 0; i < new_paths.size(); ++i) {
    if (new_paths[i].size() < 2) {
      return Error::invalid_argument("path must have at least two hops");
    }
    CompiledPath compiled =
        compile_single_path(new_paths[i], flow_of_path[i], priority, ids);
    for (const Op& op : compiled.ops) {
      auto st = dag.add_op(op);
      if (!st.ok()) return st.error();
    }
    for (auto [before, after] : compiled.edges) {
      auto st = dag.add_edge(before, after);
      if (!st.ok()) return st.error();
    }
  }
  std::vector<Op> deletions = deletion_ops(previous_ops, ids);
  if (!deletions.empty()) {
    auto st = dag.expand_with(deletions);
    if (!st.ok()) return st.error();
  }
  auto topo = dag.topological_order();
  if (!topo.ok()) return topo.error();
  return dag;
}

}  // namespace zenith
