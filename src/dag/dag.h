// The DAG abstraction (§3.1): a directed acyclic graph of OPs whose edges
// are install-order dependencies. "C:D before A:C" — the downstream rule
// must exist before traffic is steered onto it, making updates hitless.
#pragma once

#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "dag/op.h"

namespace zenith {

class Dag {
 public:
  Dag() = default;
  explicit Dag(DagId id) : id_(id) {}

  DagId id() const { return id_; }
  void set_id(DagId id) { id_ = id; }

  /// Adds an OP node. Rejects duplicate ids.
  Status add_op(Op op);

  /// Adds a dependency edge: `before` must be installed before `after`.
  /// Both must already be nodes; rejects self-edges and duplicates.
  Status add_edge(OpId before, OpId after);

  bool contains(OpId id) const { return ops_.count(id) > 0; }
  const Op& op(OpId id) const { return ops_.at(id); }
  std::size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

  /// All OP ids (deterministic: insertion order).
  const std::vector<OpId>& op_ids() const { return order_; }
  std::vector<const Op*> all_ops() const;

  const std::vector<OpId>& successors(OpId id) const;
  const std::vector<OpId>& predecessors(OpId id) const;
  std::size_t edge_count() const { return edge_count_; }

  /// OPs with no predecessors.
  std::vector<OpId> roots() const;
  /// OPs with no successors.
  std::vector<OpId> leaves() const;

  /// Validates acyclicity and edge endpoints; returns a topological order on
  /// success (stable w.r.t. insertion order among independent nodes).
  Result<std::vector<OpId>> topological_order() const;
  bool is_acyclic() const { return topological_order().ok(); }

  /// Attaches every OP in `tail` after all current leaves (Listing 6's
  /// ExpandDAG: cleanup deletions run only after the whole new DAG is in).
  Status expand_with(std::span<const Op> tail);

  /// Edge list as (before, after) pairs, for checkers.
  std::vector<std::pair<OpId, OpId>> edges() const;

  /// Set of switches touched by this DAG.
  std::unordered_set<SwitchId> touched_switches() const;

 private:
  DagId id_;
  std::unordered_map<OpId, Op> ops_;
  std::vector<OpId> order_;  // insertion order of nodes
  std::unordered_map<OpId, std::vector<OpId>> succ_;
  std::unordered_map<OpId, std::vector<OpId>> pred_;
  std::size_t edge_count_ = 0;

  static const std::vector<OpId> kNoEdges;
};

}  // namespace zenith
