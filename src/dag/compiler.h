// Compiling routing intents (sets of paths) into OP DAGs.
//
// This is the C++ analogue of the drain app's ComputeDrainDAG procedure
// (Listing 6): new-path install OPs are ordered downstream-before-upstream
// within each path, carry a priority strictly above every OP they replace,
// and deletion OPs for the replaced rules are attached after all leaves so
// the update is hitless.
#pragma once

#include <span>
#include <vector>

#include "dag/dag.h"
#include "topo/paths.h"

namespace zenith {

/// Monotonically increasing OP id source. DAG transitions must never reuse
/// ids: the NIB keys OP state by id, and id reuse would resurrect stale
/// state (one of the §3.9 state-management pitfalls).
class OpIdAllocator {
 public:
  OpId next() { return OpId(next_++); }

 private:
  std::uint32_t next_ = 1;
};

/// Equivalent of Listing 7's HighestPriorityInOPSet.
int highest_priority(std::span<const Op> ops);

struct CompiledPath {
  std::vector<Op> ops;                       // one install per hop
  std::vector<std::pair<OpId, OpId>> edges;  // downstream -> upstream order
};

/// Install OPs for one path at the given priority: hop i forwards flow
/// traffic for path.back() to hop i+1. Edges order each hop after its
/// downstream successor (ComputeSinglePathDAG).
CompiledPath compile_single_path(const Path& path, FlowId flow, int priority,
                                 OpIdAllocator& ids);

/// Builds the full replacement DAG: installs all `new_paths` at a priority
/// above everything in `previous_ops`, then deletes `previous_ops`' install
/// rules after all installs complete. `flow_of_path[i]` names the flow path
/// i carries (one flow may have one path).
Result<Dag> compile_replacement_dag(DagId dag_id,
                                    const std::vector<Path>& new_paths,
                                    const std::vector<FlowId>& flow_of_path,
                                    std::span<const Op> previous_ops,
                                    OpIdAllocator& ids);

/// Deletion OPs for every install OP in `ops` (GetDeletionOPs).
std::vector<Op> deletion_ops(std::span<const Op> ops, OpIdAllocator& ids);

}  // namespace zenith
