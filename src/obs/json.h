// Minimal JSON helpers for the observability exporters: string escaping for
// the emitters and a strict validity checker for tests and CI (the bench
// smoke stage validates emitted BENCH_*.json without external tooling).
#pragma once

#include <string>
#include <string_view>

namespace zenith::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included): ", \, control characters.
std::string json_escape(std::string_view s);

/// Strict RFC 8259 syntax check (objects, arrays, strings, numbers, the
/// three literals; no trailing garbage). On failure, `error` (when non-null)
/// receives a message with the byte offset.
bool json_valid(std::string_view text, std::string* error = nullptr);

}  // namespace zenith::obs
