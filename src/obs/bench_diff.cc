// zenith_bench_diff — compare a BENCH_*.json run against a committed
// baseline. Usage:
//
//   zenith_bench_diff baseline.json current.json [--threshold PCT]
//                     [--gate metric1,metric2,...]
//
// Prints one line per metric with the baseline value, the current value and
// the ratio, flagging metrics whose relative change exceeds the threshold
// (default 25%). Timing metrics are advisory: benchmark noise varies wildly
// across container hosts, so CI treats their deltas as a warning signal.
// Metrics named in --gate are GATING: they are simulation-deterministic
// counters (violation counts, campaign tallies, completed-OP totals) whose
// values are host-independent, so a gated metric missing from either file
// or drifting outside the threshold fails the comparison.
// Exit codes: 0 on a successful advisory comparison (including flagged
// deltas), 1 when a --gate metric is missing or out of range, 2 when an
// input file is missing or contains no metrics.
//
// The scanner reads the exact shape obs::BenchResult emits — a
// "measurements" array of {"metric":..., "value":..., "unit":...} objects —
// rather than a general JSON parser (obs/json.h only emits and validates).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

/// Extracts metric->value from a BenchResult JSON document by scanning for
/// "metric":"<name>" ... "value":<number> pairs in order.
std::map<std::string, double> scan_metrics(const std::string& text) {
  std::map<std::string, double> out;
  const std::string metric_key = "\"metric\":\"";
  const std::string value_key = "\"value\":";
  std::size_t pos = 0;
  while ((pos = text.find(metric_key, pos)) != std::string::npos) {
    pos += metric_key.size();
    std::string name;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;  // unescape
      name.push_back(text[pos++]);
    }
    std::size_t value_at = text.find(value_key, pos);
    if (value_at == std::string::npos) break;
    out[name] = std::strtod(text.c_str() + value_at + value_key.size(),
                            nullptr);
  }
  return out;
}

bool read_file(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.25;
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  std::set<std::string> gated;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr) / 100.0;
    } else if (std::strcmp(argv[i], "--gate") == 0 && i + 1 < argc) {
      std::string list = argv[++i];
      std::size_t start = 0;
      while (start <= list.size()) {
        std::size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        if (comma > start) gated.insert(list.substr(start, comma - start));
        start = comma + 1;
      }
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (baseline_path == nullptr || current_path == nullptr) {
    std::fprintf(stderr,
                 "usage: zenith_bench_diff baseline.json current.json "
                 "[--threshold PCT]\n");
    return 2;
  }

  std::string baseline_text;
  std::string current_text;
  if (!read_file(baseline_path, &baseline_text)) {
    std::fprintf(stderr, "cannot read baseline '%s'\n", baseline_path);
    return 2;
  }
  if (!read_file(current_path, &current_text)) {
    std::fprintf(stderr, "cannot read current '%s'\n", current_path);
    return 2;
  }
  std::map<std::string, double> baseline = scan_metrics(baseline_text);
  std::map<std::string, double> current = scan_metrics(current_text);
  if (baseline.empty()) {
    std::fprintf(stderr, "no metrics found in baseline '%s'\n", baseline_path);
    return 2;
  }

  std::printf("%-48s %14s %14s %8s\n", "metric", "baseline", "current",
              "ratio");
  std::size_t flagged = 0;
  std::size_t compared = 0;
  // Each entry: one line naming the failed gate metric with both values, so
  // the CI log's final lines identify the regression without scrolling back
  // through the full comparison table.
  std::vector<std::string> gate_failures;
  char detail[256];
  for (const auto& [name, base_value] : baseline) {
    const bool gating = gated.count(name) > 0;
    auto it = current.find(name);
    if (it == current.end()) {
      std::printf("%-48s %14.4g %14s %8s  MISSING%s\n", name.c_str(),
                  base_value, "-", "-", gating ? " (GATE)" : "");
      ++flagged;
      if (gating) {
        std::snprintf(detail, sizeof(detail),
                      "%s: committed %.6g, current run did not report it",
                      name.c_str(), base_value);
        gate_failures.push_back(detail);
      }
      continue;
    }
    ++compared;
    double ratio = base_value != 0.0
                       ? it->second / base_value
                       : (it->second == 0.0 ? 1.0 : HUGE_VAL);
    bool over = std::fabs(ratio - 1.0) > threshold;
    std::printf("%-48s %14.4g %14.4g %7.2fx%s\n", name.c_str(), base_value,
                it->second, ratio,
                over ? (gating ? "  FAIL (GATE)" : "  WARN") : "");
    if (over) {
      ++flagged;
      if (gating) {
        std::snprintf(detail, sizeof(detail),
                      "%s: committed %.6g, current %.6g (%+.1f%%, threshold "
                      "±%.0f%%)",
                      name.c_str(), base_value, it->second,
                      (ratio - 1.0) * 100.0, threshold * 100.0);
        gate_failures.push_back(detail);
      }
    }
  }
  for (const auto& [name, value] : current) {
    if (baseline.count(name) == 0) {
      std::printf("%-48s %14s %14.4g %8s  NEW\n", name.c_str(), "-", value,
                  "-");
    }
  }
  // A gated metric absent from BOTH files is a stale gate list — fail
  // loudly rather than silently passing an empty check.
  for (const std::string& name : gated) {
    if (baseline.count(name) == 0) {
      std::printf("%-48s gated metric absent from baseline  FAIL (GATE)\n",
                  name.c_str());
      std::snprintf(detail, sizeof(detail),
                    "%s: named in --gate but absent from committed baseline "
                    "'%s' — stale gate list or missing re-baseline",
                    name.c_str(), baseline_path);
      gate_failures.push_back(detail);
    }
  }
  std::printf("%zu metric(s) compared, %zu outside ±%.0f%% of baseline\n",
              compared, flagged, threshold * 100.0);
  if (!gate_failures.empty()) {
    std::printf("%zu gated metric(s) failed — these are deterministic "
                "counters; the regression is real, not host noise:\n",
                gate_failures.size());
    for (const std::string& failure : gate_failures) {
      std::printf("  GATE FAIL %s\n", failure.c_str());
    }
    return 1;
  }
  if (flagged > 0) {
    std::printf("note: advisory only — benchmark hosts differ; re-baseline "
                "with the commands in EXPERIMENTS.md if the shift is real\n");
  }
  return 0;
}
