#include "obs/flight_recorder.h"

#include <algorithm>
#include <sstream>

namespace zenith::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

void FlightRecorder::record(SimTime t, std::string track, std::string what,
                            std::string detail) {
  FlightEvent ev;
  ev.seq = total_;
  ev.t = t;
  ev.track = std::move(track);
  ev.what = std::move(what);
  ev.detail = std::move(detail);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
  } else {
    ring_[total_ % capacity_] = std::move(ev);
  }
  ++total_;
}

std::vector<const FlightEvent*> FlightRecorder::events() const {
  std::vector<const FlightEvent*> out;
  out.reserve(ring_.size());
  std::size_t oldest = total_ > capacity_ ? total_ % capacity_ : 0;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(&ring_[(oldest + i) % ring_.size()]);
  }
  return out;
}

std::string FlightRecorder::dump() const {
  std::ostringstream out;
  out << "flight recorder: last " << ring_.size() << " of " << total_
      << " events\n";
  for (const FlightEvent* ev : events()) {
    out << "  #" << ev->seq << " t=" << to_seconds(ev->t) << "s ["
        << ev->track << "] " << ev->what;
    if (!ev->detail.empty()) out << " " << ev->detail;
    out << "\n";
  }
  return out.str();
}

void FlightRecorder::clear() {
  ring_.clear();
  total_ = 0;
}

}  // namespace zenith::obs
