#include "obs/span_tracer.h"

#include "common/hash.h"

namespace zenith::obs {

std::uint64_t SpanTracer::push(Span span) {
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return kNoSpan;
  }
  span.id = next_id_++;
  index_[span.id] = spans_.size();
  std::uint64_t id = span.id;
  spans_.push_back(std::move(span));
  return id;
}

std::uint64_t SpanTracer::begin(std::string name, std::string track,
                                std::uint64_t parent, std::string args,
                                bool async) {
  Span span;
  span.parent = parent;
  span.start = now();
  span.async = async;
  span.name = std::move(name);
  span.track = std::move(track);
  span.args = std::move(args);
  return push(std::move(span));
}

void SpanTracer::end(std::uint64_t id, const std::string& outcome) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  Span& span = spans_[it->second];
  if (span.end != kSimTimeNever) return;  // already closed
  span.end = now();
  if (!outcome.empty()) {
    if (!span.args.empty()) span.args += " ";
    span.args += outcome;
  }
}

std::uint64_t SpanTracer::instant(std::string name, std::string track,
                                  std::uint64_t parent, std::string args) {
  Span span;
  span.parent = parent;
  span.start = now();
  span.end = now();
  span.instant = true;
  span.name = std::move(name);
  span.track = std::move(track);
  span.args = std::move(args);
  return push(std::move(span));
}

std::uint64_t SpanTracer::complete(std::string name, std::string track,
                                   SimTime start, SimTime end,
                                   std::uint64_t parent, std::string args) {
  Span span;
  span.parent = parent;
  span.start = start;
  span.end = end;
  span.name = std::move(name);
  span.track = std::move(track);
  span.args = std::move(args);
  return push(std::move(span));
}

std::uint64_t SpanTracer::op_span(OpId op) const {
  auto it = op_spans_.find(op);
  return it == op_spans_.end() ? kNoSpan : it->second;
}

std::uint64_t SpanTracer::dag_span(DagId dag) const {
  auto it = dag_spans_.find(dag);
  return it == dag_spans_.end() ? kNoSpan : it->second;
}

const Span* SpanTracer::find(std::uint64_t id) const {
  auto it = index_.find(id);
  return it == index_.end() ? nullptr : &spans_[it->second];
}

std::size_t SpanTracer::open_count() const {
  std::size_t open = 0;
  for (const Span& span : spans_) {
    if (!span.instant && span.end == kSimTimeNever) ++open;
  }
  return open;
}

std::uint64_t SpanTracer::fingerprint() const {
  Hasher h;
  for (const Span& span : spans_) {
    h.add(span.id);
    h.add(span.parent);
    h.add(static_cast<std::uint64_t>(span.start));
    h.add(static_cast<std::uint64_t>(span.end));
    h.add(static_cast<std::uint64_t>(span.instant) << 1 |
          static_cast<std::uint64_t>(span.async));
    h.add(fnv1a(span.name));
    h.add(fnv1a(span.track));
    h.add(fnv1a(span.args));
  }
  h.add(dropped_);
  return h.digest();
}

}  // namespace zenith::obs
