// Causal span tracer for the OP pipeline.
//
// Records the full lifecycle of every OP/DAG as spans and instants with
// parent/child links that cross microservice boundaries (DAG Scheduler →
// Sequencer → Worker Pool → fabric/switch → Monitoring Server → NIB commit).
// Timestamps come exclusively from the deterministic simulation clock and
// span ids are allocated sequentially, so two identically-seeded runs yield
// byte-identical traces (fingerprint() asserts exactly that).
//
// Cross-boundary parenting works through the binding tables: the component
// that opens an OP's lifecycle span binds OpId -> SpanId; every later stage
// (in a different component, at a different SimTime) parents its events by
// looking the binding up. The exporter (trace_export.h) turns the result
// into Chrome trace-event JSON loadable in Perfetto.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"

namespace zenith::obs {

struct Span {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;     // 0 = no parent
  SimTime start = 0;
  SimTime end = kSimTimeNever;  // kSimTimeNever while still open
  bool instant = false;
  /// Lifecycle spans (OP/DAG/recovery) overlap freely on one logical track;
  /// the Chrome exporter emits them as async begin/end pairs instead of
  /// nested "X" events.
  bool async = false;
  std::string name;
  std::string track;  // component / subsystem lane
  std::string args;   // preformatted "k=v" detail
};

class SpanTracer {
 public:
  static constexpr std::uint64_t kNoSpan = 0;

  /// Timestamps are read through this hook (the simulation clock). Without
  /// one, everything lands at t=0.
  void set_clock(std::function<SimTime()> clock) { clock_ = std::move(clock); }

  /// Opens a span; returns its id (kNoSpan once capacity is exhausted).
  std::uint64_t begin(std::string name, std::string track,
                      std::uint64_t parent = kNoSpan, std::string args = {},
                      bool async = false);
  /// Closes an open span; appends `outcome` to its args when non-empty.
  void end(std::uint64_t id, const std::string& outcome = {});
  /// Zero-duration event.
  std::uint64_t instant(std::string name, std::string track,
                        std::uint64_t parent = kNoSpan, std::string args = {});
  /// Appends an already-closed span with explicit timestamps (used for
  /// retroactive component service steps).
  std::uint64_t complete(std::string name, std::string track, SimTime start,
                         SimTime end, std::uint64_t parent = kNoSpan,
                         std::string args = {});

  // ---- causal bindings (cross-component parenting) --------------------------

  void bind_op(OpId op, std::uint64_t span) { op_spans_[op] = span; }
  std::uint64_t op_span(OpId op) const;
  void unbind_op(OpId op) { op_spans_.erase(op); }
  void bind_dag(DagId dag, std::uint64_t span) { dag_spans_[dag] = span; }
  std::uint64_t dag_span(DagId dag) const;

  // ---- inspection -----------------------------------------------------------

  const std::vector<Span>& spans() const { return spans_; }
  const Span* find(std::uint64_t id) const;
  std::size_t dropped() const { return dropped_; }
  std::size_t open_count() const;

  /// Hard cap on recorded spans; further begin/instant calls are counted in
  /// dropped() and return kNoSpan.
  void set_capacity(std::size_t cap) { capacity_ = cap; }

  /// FNV-1a over every span field in recording order — byte-stable across
  /// identically-seeded runs.
  std::uint64_t fingerprint() const;

 private:
  SimTime now() const { return clock_ ? clock_() : 0; }
  std::uint64_t push(Span span);

  std::function<SimTime()> clock_;
  std::vector<Span> spans_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // id -> spans_ slot
  std::unordered_map<OpId, std::uint64_t> op_spans_;
  std::unordered_map<DagId, std::uint64_t> dag_spans_;
  std::uint64_t next_id_ = 1;
  std::size_t capacity_ = 1u << 20;
  std::size_t dropped_ = 0;
};

}  // namespace zenith::obs
