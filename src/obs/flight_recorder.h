// Flight recorder: a bounded ring buffer of causal events, dumped when
// something goes wrong.
//
// Every observability hook appends here as well as to the span tracer; the
// ring keeps only the last `capacity` events, so the buffer is O(1) memory
// regardless of run length. The chaos campaign engine dumps it automatically
// when the invariant oracle flags a violation, attaching the tail of the
// causal history to the ddmin-shrunk reproducer — the "what happened right
// before the crash" view a black-box verdict cannot give.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"

namespace zenith::obs {

struct FlightEvent {
  std::uint64_t seq = 0;  // global 0-based event number (never wraps)
  SimTime t = 0;
  std::string track;   // component / subsystem that emitted it
  std::string what;    // event kind, e.g. "switch-fail"
  std::string detail;  // preformatted "k=v" payload
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256);

  void record(SimTime t, std::string track, std::string what,
              std::string detail);

  std::size_t capacity() const { return capacity_; }
  /// Total events ever recorded (>= events().size()).
  std::uint64_t total_recorded() const { return total_; }
  /// Retained events, oldest first.
  std::vector<const FlightEvent*> events() const;
  /// Human-readable dump of the retained tail.
  std::string dump() const;
  void clear();

 private:
  std::vector<FlightEvent> ring_;
  std::size_t capacity_;
  std::uint64_t total_ = 0;
};

}  // namespace zenith::obs
