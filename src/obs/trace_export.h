// Chrome trace-event JSON exporter. The output loads directly into Perfetto
// (ui.perfetto.dev) or chrome://tracing: component service steps appear as
// nested "X" slices on per-track threads, OP/DAG/recovery lifecycles as async
// begin/end pairs, and parent links as flow arrows between tracks.
#pragma once

#include <string>

namespace zenith::obs {

class SpanTracer;

/// Serializes every recorded span as a Chrome trace-event JSON document
/// ({"traceEvents":[...]}). Deterministic: depends only on tracer contents.
std::string chrome_trace_json(const SpanTracer& tracer);

}  // namespace zenith::obs
