// Tiny CLI JSON validator backing the CI bench smoke stage: exits 0 when
// every argument file parses as strict JSON, 1 otherwise. Avoids depending
// on python/jq being present in minimal build images.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE...\n", argv[0]);
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      ok = false;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (zenith::obs::json_valid(buf.str(), &error)) {
      std::printf("%s: valid JSON (%zu bytes)\n", argv[i], buf.str().size());
    } else {
      std::fprintf(stderr, "%s: %s\n", argv[i], error.c_str());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
