#include "obs/obs.h"

namespace zenith::obs {

Observability::Observability(std::size_t recorder_capacity)
    : recorder_(recorder_capacity) {}

void Observability::set_clock(std::function<SimTime()> clock) {
  clock_ = std::move(clock);
  tracer_.set_clock([this] { return now(); });
}

void Observability::event(const std::string& track, const std::string& what,
                          const std::string& detail, std::uint64_t parent) {
  recorder_.record(now(), track, what, detail);
  tracer_.instant(what, track, parent, detail);
  metrics_.counter("events", {{"track", track}, {"what", what}}).inc();
}

void Observability::count(const std::string& name, const Labels& labels,
                          std::uint64_t n) {
  metrics_.counter(name, labels).inc(n);
}

void Observability::dag_submitted(DagId dag) {
  std::string detail = "dag=" + std::to_string(dag.value());
  recorder_.record(now(), "controller", "dag-submit", detail);
  std::uint64_t span = tracer_.begin("dag " + std::to_string(dag.value()),
                                     "dag", SpanTracer::kNoSpan, detail,
                                     /*async=*/true);
  tracer_.bind_dag(dag, span);
  metrics_.counter("dags_submitted").inc();
}

void Observability::dag_admitted(DagId dag, std::size_t op_count) {
  std::uint64_t span = tracer_.dag_span(dag);
  std::string detail = "dag=" + std::to_string(dag.value()) +
                       " ops=" + std::to_string(op_count);
  recorder_.record(now(), "dag_scheduler", "dag-admit", detail);
  tracer_.instant("dag-admit", "dag_scheduler", span, detail);
  metrics_.counter("dags_admitted").inc();
  metrics_.counter("ops_admitted").inc(op_count);
}

void Observability::dag_certified(DagId dag) {
  std::string detail = "dag=" + std::to_string(dag.value());
  recorder_.record(now(), "sequencer", "dag-certify", detail);
  tracer_.end(tracer_.dag_span(dag), "outcome=done");
  metrics_.counter("dags_certified").inc();
}

void Observability::op_scheduled(OpId op, DagId dag, SwitchId sw,
                                 const std::string& track) {
  std::string detail = "op=" + std::to_string(op.value()) +
                       " sw=" + std::to_string(sw.value());
  if (dag.valid()) detail += " dag=" + std::to_string(dag.value());
  std::uint64_t existing = tracer_.op_span(op);
  if (existing != SpanTracer::kNoSpan) {
    // Re-scheduled after a failure or takeover: one lifecycle span per
    // attempt would hide the retry chain, so record it as a stage instead.
    op_stage(op, track, "op-reschedule", detail);
    metrics_.counter("ops_rescheduled", {{"by", track}}).inc();
    return;
  }
  recorder_.record(now(), track, "op-schedule", detail);
  std::uint64_t span =
      tracer_.begin("op " + std::to_string(op.value()), "op",
                    tracer_.dag_span(dag), detail, /*async=*/true);
  tracer_.bind_op(op, span);
  metrics_.counter("ops_scheduled", {{"by", track}}).inc();
}

void Observability::op_stage(OpId op, const std::string& track,
                             const std::string& what,
                             const std::string& detail) {
  std::string full = "op=" + std::to_string(op.value());
  if (!detail.empty()) full += " " + detail;
  recorder_.record(now(), track, what, full);
  tracer_.instant(what, track, tracer_.op_span(op), full);
  metrics_.counter("op_stages", {{"track", track}, {"what", what}}).inc();
}

void Observability::op_closed(OpId op, const std::string& track,
                              const std::string& outcome) {
  std::uint64_t span = tracer_.op_span(op);
  if (span == SpanTracer::kNoSpan) return;  // never opened (or already closed)
  recorder_.record(now(), track, "op-" + outcome,
                   "op=" + std::to_string(op.value()));
  tracer_.end(span, "outcome=" + outcome);
  tracer_.unbind_op(op);
  metrics_.counter("ops_closed", {{"outcome", outcome}}).inc();
}

void Observability::batch_dispatched(SwitchId sw, std::size_t size) {
  metrics_.histogram("op_batch_size", {{"stage", "dispatch"}}, 1.0, 65.0, 16)
      .add(static_cast<double>(size));
  if (size > 1) {
    recorder_.record(now(), "worker", "batch-send",
                     "sw=" + std::to_string(sw.value()) +
                         " size=" + std::to_string(size));
  }
}

void Observability::batch_committed(SwitchId sw, std::size_t size) {
  metrics_.histogram("op_batch_size", {{"stage", "commit"}}, 1.0, 65.0, 16)
      .add(static_cast<double>(size));
  if (size > 1) {
    recorder_.record(now(), "monitoring", "batch-commit",
                     "sw=" + std::to_string(sw.value()) +
                         " size=" + std::to_string(size));
  }
}

void Observability::recovery_started(SwitchId sw) {
  std::string detail = "sw=" + std::to_string(sw.value());
  recorder_.record(now(), "topo_event_handler", "recovery-start", detail);
  std::uint64_t span =
      tracer_.begin("recovery sw " + std::to_string(sw.value()), "recovery",
                    SpanTracer::kNoSpan, detail, /*async=*/true);
  recovery_spans_[sw] = span;
  metrics_.counter("recoveries_started").inc();
}

void Observability::recovery_finished(SwitchId sw, const std::string& how) {
  auto it = recovery_spans_.find(sw);
  if (it == recovery_spans_.end()) return;
  recorder_.record(now(), "topo_event_handler", "recovery-finish",
                   "sw=" + std::to_string(sw.value()) + " how=" + how);
  tracer_.end(it->second, "outcome=" + how);
  recovery_spans_.erase(it);
  metrics_.counter("recoveries_finished", {{"how", how}}).inc();
}

}  // namespace zenith::obs
