// Metrics registry: named, labeled counters / gauges / histograms with
// deterministic snapshots.
//
// Every metric series is interned under a canonical key ("name{k=v,...}",
// labels sorted by key), stored in ordered maps, and rendered by snapshot()
// in a byte-stable order — so two identically-seeded simulation runs
// produce byte-identical snapshots and equal FNV-1a fingerprints. That is
// the determinism contract the chaos campaigns (and obs_test) assert.
//
// Counters/gauges are plain values, not atomics: the simulation kernel is
// single-threaded by design. Histograms reuse zenith::Histogram, which
// tracks out-of-range samples in explicit underflow/overflow counters.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "common/stats.h"

namespace zenith::obs {

/// Label set for one metric series, e.g. {{"component", "worker0"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Point-in-time rendering of a registry: entries in canonical order
/// (counters, then gauges, then histograms; key-sorted within each kind).
struct MetricsSnapshot {
  struct Entry {
    std::string key;    // canonical "name{k=v,...}"
    std::string kind;   // "counter" | "gauge" | "histogram"
    std::string value;  // preformatted, deterministic rendering
  };

  SimTime at = 0;
  std::vector<Entry> entries;

  std::string to_string() const;
  std::string to_json() const;
  /// FNV-1a over the canonical rendering (timestamp included).
  std::uint64_t fingerprint() const;
};

class MetricsRegistry {
 public:
  /// Interns (or finds) a series; references stay valid for the registry's
  /// lifetime (std::map nodes never move).
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  /// Fixed-range histogram. Re-requesting an existing key returns the
  /// original instance; the range arguments are ignored then.
  Histogram& histogram(const std::string& name, const Labels& labels,
                       double lo, double hi, std::size_t bins);

  MetricsSnapshot snapshot(SimTime at) const;
  std::size_t series_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Canonical series key: name plus sorted labels.
  static std::string key_of(const std::string& name, const Labels& labels);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace zenith::obs
