#include "obs/json.h"

#include <cctype>
#include <cstdio>

namespace zenith::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Recursive-descent JSON syntax checker. Positions are byte offsets.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse(std::string* error) {
    skip_ws();
    if (!value()) return fail(error);
    skip_ws();
    if (pos_ != text_.size()) {
      err_ = "trailing characters";
      return fail(error);
    }
    return true;
  }

 private:
  bool fail(std::string* error) const {
    if (error != nullptr) {
      *error = (err_.empty() ? std::string("invalid JSON") : err_) +
               " at byte " + std::to_string(pos_);
    }
    return false;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }

  bool expect(char c) {
    if (eof() || peek() != c) {
      err_ = std::string("expected '") + c + "'";
      return false;
    }
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      err_ = "invalid literal";
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (!expect('"')) return false;
    while (!eof()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        err_ = "unescaped control character in string";
        --pos_;
        return false;
      }
      if (c == '\\') {
        if (eof()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) {
                err_ = "bad \\u escape";
                return false;
              }
              ++pos_;
            }
            break;
          }
          default:
            err_ = "bad escape";
            --pos_;
            return false;
        }
      }
    }
    err_ = "unterminated string";
    return false;
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      err_ = "expected digit";
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos_;
    if (!eof() && peek() == '0') {
      ++pos_;  // leading zero: no further integer digits allowed
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  bool value() {
    if (++depth_ > kMaxDepth) {
      err_ = "nesting too deep";
      return false;
    }
    bool ok = value_inner();
    --depth_;
    return ok;
  }

  bool value_inner() {
    if (eof()) {
      err_ = "unexpected end of input";
      return false;
    }
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      return expect('}');
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (!eof() && peek() == ',') {
        ++pos_;
        continue;
      }
      return expect(']');
    }
  }

  static constexpr int kMaxDepth = 256;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string err_;
};

}  // namespace

bool json_valid(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

}  // namespace zenith::obs
