#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/hash.h"
#include "obs/json.h"

namespace zenith::obs {

namespace {

/// Deterministic double rendering: shortest round-trippable form is not
/// needed, a fixed %.17g is stable across runs and platforms we target.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string histogram_value(const Histogram& h) {
  std::ostringstream out;
  out << "total=" << h.total() << " underflow=" << h.underflow()
      << " overflow=" << h.overflow() << " bins=[";
  for (std::size_t i = 0; i < h.bins(); ++i) {
    if (i > 0) out << ",";
    out << h.bin_count(i);
  }
  out << "]";
  return out.str();
}

}  // namespace

std::string MetricsRegistry::key_of(const std::string& name,
                                    const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name + "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ",";
    key += sorted[i].first + "=" + sorted[i].second;
  }
  key += "}";
  return key;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  return counters_[key_of(name, labels)];
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return gauges_[key_of(name, labels)];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels, double lo,
                                      double hi, std::size_t bins) {
  std::string key = key_of(name, labels);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::move(key), Histogram(lo, hi, bins)).first;
  }
  return it->second;
}

MetricsSnapshot MetricsRegistry::snapshot(SimTime at) const {
  MetricsSnapshot snap;
  snap.at = at;
  snap.entries.reserve(series_count());
  for (const auto& [key, c] : counters_) {
    snap.entries.push_back({key, "counter", std::to_string(c.value())});
  }
  for (const auto& [key, g] : gauges_) {
    snap.entries.push_back({key, "gauge", fmt_double(g.value())});
  }
  for (const auto& [key, h] : histograms_) {
    snap.entries.push_back({key, "histogram", histogram_value(h)});
  }
  return snap;
}

std::string MetricsSnapshot::to_string() const {
  std::ostringstream out;
  out << "metrics snapshot @ " << to_seconds(at) << "s (" << entries.size()
      << " series)\n";
  for (const Entry& e : entries) {
    out << "  " << e.kind << " " << e.key << " = " << e.value << "\n";
  }
  return out.str();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"at_us\":" << at << ",\"series\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (i > 0) out << ",";
    out << "{\"key\":\"" << json_escape(e.key) << "\",\"kind\":\"" << e.kind
        << "\",\"value\":\"" << json_escape(e.value) << "\"}";
  }
  out << "]}";
  return out.str();
}

std::uint64_t MetricsSnapshot::fingerprint() const {
  std::uint64_t h = fnv1a(std::to_string(at));
  for (const Entry& e : entries) {
    h = fnv1a(e.key, h);
    h = fnv1a(e.kind, h);
    h = fnv1a(e.value, h);
  }
  return h;
}

}  // namespace zenith::obs
