// Observability clock sources.
//
// Everything in obs timestamps through one std::function<SimTime()> (spans,
// metrics snapshots, the flight recorder). Under the deterministic backends
// that function reads the simulator; under the socket transport there is no
// single logical clock — the daemons run in real time — so spans and
// metrics switch to a monotonic wall clock instead. Both report in the same
// unit (SimTime microseconds), so every consumer downstream of
// Observability::now() works unchanged.
#pragma once

#include <functional>

#include "common/ids.h"
#include "sim/simulator.h"

namespace zenith::obs {

using ClockFn = std::function<SimTime()>;

/// The deterministic source: reads `sim->now()`. What Experiment wires up.
inline ClockFn sim_clock(Simulator* sim) {
  return [sim] { return sim->now(); };
}

/// The socket-mode source: monotonic wall time in microseconds, zeroed at
/// the first call so timestamps stay small and runs are comparable.
ClockFn wall_clock();

}  // namespace zenith::obs
