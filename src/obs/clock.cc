#include "obs/clock.h"

#include <chrono>
#include <memory>

namespace zenith::obs {

ClockFn wall_clock() {
  using Clock = std::chrono::steady_clock;
  // Shared (not static-global) epoch: each wall_clock() call starts a fresh
  // timeline, and copies of the returned function agree with each other.
  auto epoch = std::make_shared<Clock::time_point>(Clock::now());
  return [epoch] {
    auto elapsed = Clock::now() - *epoch;
    return static_cast<SimTime>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count());
  };
}

}  // namespace zenith::obs
