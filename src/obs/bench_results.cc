#include "obs/bench_results.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

#include "obs/json.h"

namespace zenith::obs {

void BenchResult::add(const std::string& metric, double value,
                      std::string unit) {
  Measurement m;
  m.metric = metric;
  m.value = value;
  m.unit = std::move(unit);
  measurements_.push_back(std::move(m));
}

void BenchResult::add_count(const std::string& metric, std::uint64_t value) {
  Measurement m;
  m.metric = metric;
  m.is_count = true;
  m.count = value;
  measurements_.push_back(std::move(m));
}

void BenchResult::add_note(const std::string& key, const std::string& text) {
  notes_.emplace_back(key, text);
}

std::string BenchResult::to_json() const {
  std::ostringstream out;
  out << "{\"bench\":\"" << json_escape(name_) << "\",\"measurements\":[";
  for (std::size_t i = 0; i < measurements_.size(); ++i) {
    const Measurement& m = measurements_[i];
    if (i > 0) out << ",";
    out << "{\"metric\":\"" << json_escape(m.metric) << "\",\"value\":";
    if (m.is_count) {
      out << m.count;
    } else {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", m.value);
      // JSON has no inf/nan literals ("%.17g" otherwise emits only
      // digits, '.', '-', '+', 'e').
      std::string_view sv(buf);
      bool finite = sv.find('i') == std::string_view::npos &&
                    sv.find('n') == std::string_view::npos;
      out << (finite ? sv : std::string_view("null"));
    }
    if (!m.unit.empty()) out << ",\"unit\":\"" << json_escape(m.unit) << "\"";
    out << "}";
  }
  out << "],\"notes\":{";
  for (std::size_t i = 0; i < notes_.size(); ++i) {
    if (i > 0) out << ",";
    out << "\"" << json_escape(notes_[i].first) << "\":\""
        << json_escape(notes_[i].second) << "\"";
  }
  out << "}}";
  return out.str();
}

std::string BenchResult::write(const std::string& dir) const {
  std::string target = dir;
  if (target.empty()) {
    const char* env = std::getenv("ZENITH_BENCH_OUT");
    if (env != nullptr && env[0] != '\0') target = env;
  }
  std::string path =
      (target.empty() ? std::string() : target + "/") + "BENCH_" + name_ +
      ".json";
  std::ofstream out(path);
  out << to_json() << "\n";
  return path;
}

}  // namespace zenith::obs
