// Machine-readable bench output: a flat list of named measurements written as
// BENCH_<name>.json, so CI and plotting scripts can diff runs without
// scraping the human-oriented tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace zenith::obs {

class BenchResult {
 public:
  explicit BenchResult(std::string name) : name_(std::move(name)) {}

  void add(const std::string& metric, double value, std::string unit = {});
  void add_count(const std::string& metric, std::uint64_t value);
  void add_note(const std::string& key, const std::string& text);

  const std::string& name() const { return name_; }
  std::string to_json() const;

  /// Writes BENCH_<name>.json into `dir` (or $ZENITH_BENCH_OUT, or the
  /// current directory when both are empty) and returns the path.
  std::string write(const std::string& dir = {}) const;

 private:
  struct Measurement {
    std::string metric;
    bool is_count = false;
    double value = 0.0;
    std::uint64_t count = 0;
    std::string unit;
  };

  std::string name_;
  std::vector<Measurement> measurements_;
  std::vector<std::pair<std::string, std::string>> notes_;
};

}  // namespace zenith::obs
