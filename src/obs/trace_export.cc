#include "obs/trace_export.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "obs/json.h"
#include "obs/span_tracer.h"

namespace zenith::obs {

std::string chrome_trace_json(const SpanTracer& tracer) {
  const std::vector<Span>& spans = tracer.spans();

  // One "thread" per track, numbered in first-seen order so the Perfetto
  // layout is stable across identically-seeded runs.
  std::vector<std::string> tracks;
  std::unordered_map<std::string, int> tids;
  auto tid_of = [&](const std::string& track) {
    auto it = tids.find(track);
    if (it != tids.end()) return it->second;
    int tid = static_cast<int>(tracks.size()) + 1;
    tids.emplace(track, tid);
    tracks.push_back(track);
    return tid;
  };
  SimTime max_ts = 0;
  for (const Span& s : spans) {
    tid_of(s.track);
    max_ts = std::max(max_ts, s.start);
    if (s.end != kSimTimeNever) max_ts = std::max(max_ts, s.end);
  }

  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out << ",";
    first = false;
  };
  for (const std::string& track : tracks) {
    comma();
    out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":"
        << tids[track] << ",\"args\":{\"name\":\"" << json_escape(track)
        << "\"}}";
  }
  for (const Span& s : spans) {
    int tid = tids[s.track];
    std::string name = json_escape(s.name);
    std::string args = "{\"detail\":\"" + json_escape(s.args) +
                       "\",\"span_id\":" + std::to_string(s.id) + "}";
    // SimTime is already microseconds, the unit trace-event "ts" expects.
    if (s.instant) {
      comma();
      out << "{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"event\",\"name\":\"" << name
          << "\",\"ts\":" << s.start << ",\"pid\":1,\"tid\":" << tid
          << ",\"args\":" << args << "}";
    } else if (s.async) {
      // Lifecycle spans overlap on one track; async pairs render them as
      // stacked arrows instead of malformed nested slices.
      SimTime end = s.end == kSimTimeNever ? max_ts : s.end;
      comma();
      out << "{\"ph\":\"b\",\"cat\":\"lifecycle\",\"id\":" << s.id
          << ",\"name\":\"" << name << "\",\"ts\":" << s.start
          << ",\"pid\":1,\"tid\":" << tid << ",\"args\":" << args << "}";
      comma();
      out << "{\"ph\":\"e\",\"cat\":\"lifecycle\",\"id\":" << s.id
          << ",\"name\":\"" << name << "\",\"ts\":" << end
          << ",\"pid\":1,\"tid\":" << tid << "}";
    } else {
      SimTime end = s.end == kSimTimeNever ? max_ts : s.end;
      comma();
      out << "{\"ph\":\"X\",\"cat\":\"step\",\"name\":\"" << name
          << "\",\"ts\":" << s.start << ",\"dur\":" << end - s.start
          << ",\"pid\":1,\"tid\":" << tid << ",\"args\":" << args << "}";
    }
    if (s.parent != SpanTracer::kNoSpan) {
      const Span* parent = tracer.find(s.parent);
      if (parent != nullptr) {
        // Flow arrow parent -> child, keyed by the child span id.
        comma();
        out << "{\"ph\":\"s\",\"cat\":\"causal\",\"id\":" << s.id
            << ",\"name\":\"link\",\"ts\":" << parent->start
            << ",\"pid\":1,\"tid\":" << tids[parent->track] << "}";
        comma();
        out << "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"causal\",\"id\":" << s.id
            << ",\"name\":\"link\",\"ts\":" << s.start
            << ",\"pid\":1,\"tid\":" << tid << "}";
      }
    }
  }
  out << "]}";
  return out.str();
}

}  // namespace zenith::obs
