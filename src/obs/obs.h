// Observability bundle: one object carrying the metrics registry, the causal
// span tracer, and the flight recorder, plus the domain hooks the pipeline
// components call.
//
// The bundle is attached by pointer (CoreContext::observability, and setters
// on Component / Fabric); a null pointer means "not instrumented" and every
// call site guards on it, so uninstrumented runs pay a single branch. All
// hooks are passive — they never schedule simulator events — so attaching
// observability cannot change simulated behaviour, only record it.
//
// Cross-component causality: dag_submitted() opens the DAG lifecycle span,
// op_scheduled() opens each OP's lifecycle span parented to its DAG, and the
// later stages (worker send, switch ack, NIB commit, cleanup/reset) attach
// instants to the OP span by OpId lookup, even though they run in different
// components at different SimTimes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "common/ids.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span_tracer.h"

namespace zenith::obs {

class Observability {
 public:
  explicit Observability(std::size_t recorder_capacity = 256);

  /// Hook up the simulation clock (usually [sim]{ return sim->now(); }).
  void set_clock(std::function<SimTime()> clock);
  SimTime now() const { return clock_ ? clock_() : 0; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  SpanTracer& tracer() { return tracer_; }
  const SpanTracer& tracer() const { return tracer_; }
  FlightRecorder& recorder() { return recorder_; }
  const FlightRecorder& recorder() const { return recorder_; }

  /// Metrics snapshot stamped with the current simulation time.
  MetricsSnapshot snapshot() const { return metrics_.snapshot(now()); }

  // ---- generic hooks --------------------------------------------------------

  /// Records a discrete event in both the flight recorder and the trace
  /// (as an instant), and bumps the `events{track=...,what=...}` counter.
  void event(const std::string& track, const std::string& what,
             const std::string& detail = {},
             std::uint64_t parent = SpanTracer::kNoSpan);
  void count(const std::string& name, const Labels& labels = {},
             std::uint64_t n = 1);

  // ---- OP / DAG lifecycle hooks ---------------------------------------------

  void dag_submitted(DagId dag);
  void dag_admitted(DagId dag, std::size_t op_count);
  /// Ends the DAG lifecycle span (sequencer certified all OPs done).
  void dag_certified(DagId dag);

  /// Opens (or, on a retry after failure, re-marks) the OP lifecycle span.
  /// `dag` may be invalid for controller-issued OPs such as cleanups.
  void op_scheduled(OpId op, DagId dag, SwitchId sw, const std::string& track);
  /// Attaches a stage instant (send / ack / requeue / ...) to the OP span.
  void op_stage(OpId op, const std::string& track, const std::string& what,
                const std::string& detail = {});
  /// Ends the OP lifecycle span with an outcome (done / failed-switch /
  /// reset / adopted) and releases the OpId binding so a reused id (after
  /// reset_switch_ops) starts a fresh span.
  void op_closed(OpId op, const std::string& track,
                 const std::string& outcome);

  // ---- batching hooks -------------------------------------------------------

  /// A worker forwarded one per-switch dispatch unit of `size` OPs (size 1 =
  /// the unbatched wire protocol). Feeds the `op_batch_size{stage=dispatch}`
  /// histogram so the coalescing efficiency of a run is visible.
  void batch_dispatched(SwitchId sw, std::size_t size);
  /// The Monitoring Server committed one batch-ACK of `size` OPs in a single
  /// NIB transaction.
  void batch_committed(SwitchId sw, std::size_t size);

  // ---- switch recovery hooks ------------------------------------------------

  void recovery_started(SwitchId sw);
  void recovery_finished(SwitchId sw, const std::string& how);

 private:
  std::function<SimTime()> clock_;
  MetricsRegistry metrics_;
  SpanTracer tracer_;
  FlightRecorder recorder_;
  std::unordered_map<SwitchId, std::uint64_t> recovery_spans_;
};

}  // namespace zenith::obs
