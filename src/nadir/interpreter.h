// The NADIR runtime interpreter.
//
// Executes labeled atomic steps of a Spec over an Env. This single engine
// serves three roles in the reproduction:
//   1. generated-code runtime: the simulator drives app components whose
//      behaviour comes from their spec (the paper's NADIR-generated code);
//   2. verification backend: the app-verification explorer (§4, §6.3)
//      enumerates interleavings by calling try_step on cloned Envs;
//   3. conformance oracle: tests replay the same scenario through a
//      hand-written C++ component and the interpreted spec and compare.
//
// Crash semantics (§5): component failure resets a process's pc to its
// first label and wipes its *locals*; globals are NIB-backed and survive
// ("global variables are fully persistent ... local variables have no
// persistence").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "nadir/spec.h"

namespace zenith::nadir {

enum class StepOutcome {
  kExecuted,  // step ran; env mutated; pc advanced
  kBlocked,   // guard/await failed; env unchanged
  kDone,      // process already terminated
};

class Interpreter {
 public:
  /// Attempts the step at `proc`'s current pc. Mutates env only when the
  /// step executes. `check_types` re-validates annotations after the step
  /// (the generated-code runtime check of §5).
  static StepOutcome try_step(const Spec& spec, Env& env,
                              const std::string& proc,
                              bool check_types = false);

  /// Round-robin scheduler: repeatedly steps every process until all are
  /// blocked or done, or `max_steps` executions happen. Deterministic.
  /// Returns executed step count.
  static std::size_t run_to_quiescence(const Spec& spec, Env& env,
                                       std::size_t max_steps = 100000);

  /// Crash a process per NADIR semantics (see file comment).
  static void crash_process(const Spec& spec, Env& env,
                            const std::string& proc);

  /// True when every process is blocked or done.
  static bool quiescent(const Spec& spec, const Env& env);
};

}  // namespace zenith::nadir
