#include "nadir/interpreter.h"

#include <cassert>

#include "common/logging.h"

namespace zenith::nadir {

StepOutcome Interpreter::try_step(const Spec& spec, Env& env,
                                  const std::string& proc, bool check_types) {
  const Process* process = spec.find_process(proc);
  assert(process != nullptr && "unknown process");
  Env::ProcState& state = env.procs.at(proc);
  if (state.pc == kPcDone) return StepOutcome::kDone;

  const Step* step = process->find_step(state.pc);
  assert(step != nullptr && "pc points at unknown label");

  // Execute against a working copy so a blocked step leaves no trace.
  Env working = env;
  StepContext ctx(spec, *process, working);
  ctx.step_ = step;
  ctx.next_pc_ = process->next_label(state.pc);
  step->fn(ctx);
  if (ctx.blocked()) return StepOutcome::kBlocked;

  working.procs.at(proc).pc = ctx.next_pc_;
  env = std::move(working);

  if (check_types) {
    auto st = spec.check_types(env);
    if (!st.ok()) {
      ZLOG_ERROR("TypeOK violated after %s.%s: %s", proc.c_str(),
                 step->label.c_str(), st.error().message.c_str());
      assert(false && "TypeOK violated");
    }
  }
  return StepOutcome::kExecuted;
}

std::size_t Interpreter::run_to_quiescence(const Spec& spec, Env& env,
                                           std::size_t max_steps) {
  std::size_t executed = 0;
  bool progress = true;
  while (progress && executed < max_steps) {
    progress = false;
    for (const Process& p : spec.processes()) {
      if (try_step(spec, env, p.name()) == StepOutcome::kExecuted) {
        ++executed;
        progress = true;
        if (executed >= max_steps) break;
      }
    }
  }
  return executed;
}

void Interpreter::crash_process(const Spec& spec, Env& env,
                                const std::string& proc) {
  const Process* process = spec.find_process(proc);
  assert(process != nullptr);
  Env::ProcState& state = env.procs.at(proc);
  state.pc = process->initial_pc();
  state.locals.clear();
  for (const VariableDecl& l : process->locals()) {
    state.locals[l.name] = l.initial;
  }
  // Globals survive: per §5 "global variables are fully persistent and must
  // survive failures; local variables have no persistence" — NADIR stores
  // them in the NIB.
}

bool Interpreter::quiescent(const Spec& spec, const Env& env) {
  for (const Process& p : spec.processes()) {
    Env copy = env;
    StepOutcome out = try_step(spec, copy, p.name());
    if (out == StepOutcome::kExecuted) return false;
  }
  return true;
}

}  // namespace zenith::nadir
