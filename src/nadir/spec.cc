#include "nadir/spec.h"

#include <algorithm>
#include <sstream>

#include "common/hash.h"

namespace zenith::nadir {

std::uint64_t Env::hash() const {
  Hasher h;
  for (const auto& [name, v] : globals) {
    h.add(fnv1a(name));
    h.add(v.hash());
  }
  for (const auto& [name, proc] : procs) {
    h.add(fnv1a(name));
    h.add(fnv1a(proc.pc));
    for (const auto& [lname, lv] : proc.locals) {
      h.add(fnv1a(lname));
      h.add(lv.hash());
    }
  }
  return h.digest();
}

std::string Env::to_string() const {
  std::ostringstream out;
  for (const auto& [name, v] : globals) {
    out << name << " = " << v.to_string() << "\n";
  }
  for (const auto& [name, proc] : procs) {
    out << name << "@" << proc.pc;
    for (const auto& [lname, lv] : proc.locals) {
      out << " " << lname << "=" << lv.to_string();
    }
    out << "\n";
  }
  return out.str();
}

Process& Process::local(std::string name, TypePtr type, Value initial) {
  locals_.push_back(VariableDecl{std::move(name), std::move(type),
                                 std::move(initial), false});
  return *this;
}

Process& Process::step(Step step) {
  assert(find_step(step.label) == nullptr && "duplicate step label");
  steps_.push_back(std::move(step));
  return *this;
}

const Step* Process::find_step(const std::string& label) const {
  for (const Step& s : steps_) {
    if (s.label == label) return &s;
  }
  return nullptr;
}

const std::string& Process::next_label(const std::string& label) const {
  for (std::size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i].label == label) {
      return i + 1 < steps_.size() ? steps_[i + 1].label : kPcDone;
    }
  }
  assert(false && "label not found");
  return kPcDone;
}

const std::string& Process::initial_pc() const {
  assert(!steps_.empty());
  return steps_.front().label;
}

Spec& Spec::global(std::string name, TypePtr type, Value initial,
                   bool persistent) {
  assert(find_global(name) == nullptr && "duplicate global");
  globals_.push_back(
      VariableDecl{std::move(name), std::move(type), std::move(initial),
                   persistent});
  return *this;
}

Spec& Spec::process(Process process) {
  assert(find_process(process.name()) == nullptr && "duplicate process");
  processes_.push_back(std::move(process));
  return *this;
}

const Process* Spec::find_process(const std::string& name) const {
  for (const Process& p : processes_) {
    if (p.name() == name) return &p;
  }
  return nullptr;
}

const VariableDecl* Spec::find_global(const std::string& name) const {
  for (const VariableDecl& g : globals_) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

Result<Env> Spec::make_initial_env() const {
  Env env;
  for (const VariableDecl& g : globals_) {
    if (!g.type->check(g.initial)) {
      return Error::invalid_argument("initial value of global '" + g.name +
                                     "' fails annotation " +
                                     g.type->to_string());
    }
    env.globals[g.name] = g.initial;
  }
  for (const Process& p : processes_) {
    Env::ProcState state;
    state.pc = p.initial_pc();
    for (const VariableDecl& l : p.locals()) {
      if (!l.type->check(l.initial)) {
        return Error::invalid_argument("initial value of local '" + p.name() +
                                       "." + l.name + "' fails annotation");
      }
      state.locals[l.name] = l.initial;
    }
    env.procs[p.name()] = std::move(state);
  }
  return env;
}

Status Spec::check_types(const Env& env) const {
  for (const VariableDecl& g : globals_) {
    auto it = env.globals.find(g.name);
    if (it == env.globals.end()) {
      return Error::internal("global '" + g.name + "' missing from env");
    }
    if (!g.type->check(it->second)) {
      return Error::failed_precondition(
          "TypeOK violation: global '" + g.name + "' = " +
          it->second.to_string() + " does not satisfy " +
          g.type->to_string());
    }
  }
  for (const Process& p : processes_) {
    auto pit = env.procs.find(p.name());
    if (pit == env.procs.end()) {
      return Error::internal("process '" + p.name() + "' missing from env");
    }
    for (const VariableDecl& l : p.locals()) {
      auto lit = pit->second.locals.find(l.name);
      if (lit == pit->second.locals.end()) {
        return Error::internal("local '" + l.name + "' missing");
      }
      if (!l.type->check(lit->second)) {
        return Error::failed_precondition(
            "TypeOK violation: local '" + p.name() + "." + l.name + "' = " +
            lit->second.to_string() + " does not satisfy " +
            l.type->to_string());
      }
    }
  }
  return Status::success();
}

StepContext::StepContext(const Spec& spec, const Process& process, Env& env)
    : spec_(spec), process_(process), env_(env) {}

void StepContext::check_read(const std::string& name) const {
  assert(step_ != nullptr);
  bool allowed =
      std::find(step_->reads.begin(), step_->reads.end(), name) !=
          step_->reads.end() ||
      std::find(step_->writes.begin(), step_->writes.end(), name) !=
          step_->writes.end();
  (void)allowed;
  assert(allowed && "step reads a global outside its annotation");
}

void StepContext::check_write(const std::string& name) const {
  assert(step_ != nullptr);
  bool allowed = std::find(step_->writes.begin(), step_->writes.end(), name) !=
                 step_->writes.end();
  (void)allowed;
  assert(allowed && "step writes a global outside its annotation");
}

const Value& StepContext::global(const std::string& name) const {
  check_read(name);
  auto it = env_.globals.find(name);
  assert(it != env_.globals.end() && "unknown global");
  return it->second;
}

void StepContext::set_global(const std::string& name, Value v) {
  check_write(name);
  auto it = env_.globals.find(name);
  assert(it != env_.globals.end() && "unknown global");
  it->second = std::move(v);
}

const Value& StepContext::local(const std::string& name) const {
  auto& locals = env_.procs.at(process_.name()).locals;
  auto it = locals.find(name);
  assert(it != locals.end() && "unknown local");
  return it->second;
}

void StepContext::set_local(const std::string& name, Value v) {
  auto& locals = env_.procs.at(process_.name()).locals;
  auto it = locals.find(name);
  assert(it != locals.end() && "unknown local");
  it->second = std::move(v);
}

void StepContext::jump(const std::string& label) {
  assert(label == kPcDone || process_.find_step(label) != nullptr);
  next_pc_ = label;
}

bool StepContext::fifo_empty(const std::string& name) const {
  return global(name).size() == 0;
}

void StepContext::fifo_put(const std::string& name, Value v) {
  set_global(name, global(name).append(std::move(v)));
}

Value StepContext::fifo_get(const std::string& name) {
  const Value& q = global(name);
  if (q.size() == 0) {
    blocked_ = true;
    return Value::nil();
  }
  Value head = q.head();
  set_global(name, q.tail());
  return head;
}

Value StepContext::fifo_peek(const std::string& name) {
  const Value& q = global(name);
  if (q.size() == 0) {
    blocked_ = true;
    return Value::nil();
  }
  return q.head();
}

void StepContext::fifo_ack_pop(const std::string& name) {
  const Value& q = global(name);
  assert(q.size() > 0 && "AckQueuePop on empty queue");
  set_global(name, q.tail());
}

}  // namespace zenith::nadir
