#include "nadir/type.h"

#include <algorithm>
#include <sstream>

namespace zenith::nadir {

TypePtr Type::integer() {
  return TypePtr(new Type(Tag::kInt));
}

TypePtr Type::boolean() {
  return TypePtr(new Type(Tag::kBool));
}

TypePtr Type::string() {
  return TypePtr(new Type(Tag::kString));
}

TypePtr Type::enumeration(std::vector<std::string> members) {
  auto* t = new Type(Tag::kEnum);
  t->enum_members_ = std::move(members);
  return TypePtr(t);
}

TypePtr Type::seq(TypePtr element) {
  auto* t = new Type(Tag::kSeq);
  t->element_ = std::move(element);
  return TypePtr(t);
}

TypePtr Type::set(TypePtr element) {
  auto* t = new Type(Tag::kSet);
  t->element_ = std::move(element);
  return TypePtr(t);
}

TypePtr Type::record(std::vector<std::pair<std::string, TypePtr>> fields) {
  auto* t = new Type(Tag::kRecord);
  t->fields_ = std::move(fields);
  return TypePtr(t);
}

TypePtr Type::nullable(TypePtr inner) {
  auto* t = new Type(Tag::kNullable);
  t->element_ = std::move(inner);
  return TypePtr(t);
}

bool Type::check(const Value& v) const {
  switch (tag_) {
    case Tag::kInt:
      return v.kind() == Kind::kInt;
    case Tag::kBool:
      return v.kind() == Kind::kBool;
    case Tag::kString:
      return v.kind() == Kind::kString;
    case Tag::kEnum:
      return v.kind() == Kind::kString &&
             std::find(enum_members_.begin(), enum_members_.end(),
                       v.as_string()) != enum_members_.end();
    case Tag::kSeq:
      if (v.kind() != Kind::kSeq) return false;
      return std::all_of(v.as_seq().begin(), v.as_seq().end(),
                         [&](const Value& e) { return element_->check(e); });
    case Tag::kSet:
      if (v.kind() != Kind::kSet) return false;
      return std::all_of(v.as_set().begin(), v.as_set().end(),
                         [&](const Value& e) { return element_->check(e); });
    case Tag::kRecord: {
      if (v.kind() != Kind::kRecord) return false;
      const auto& fields = v.as_record();
      if (fields.size() != fields_.size()) return false;
      for (const auto& [name, type] : fields_) {
        auto it = fields.find(name);
        if (it == fields.end() || !type->check(it->second)) return false;
      }
      return true;
    }
    case Tag::kNullable:
      return v.is_nil() || element_->check(v);
  }
  return false;
}

std::string Type::to_string() const {
  std::ostringstream out;
  switch (tag_) {
    case Tag::kInt:
      out << "Nat";
      break;
    case Tag::kBool:
      out << "BOOLEAN";
      break;
    case Tag::kString:
      out << "STRING";
      break;
    case Tag::kEnum: {
      out << "{";
      for (std::size_t i = 0; i < enum_members_.size(); ++i) {
        if (i > 0) out << ", ";
        out << '"' << enum_members_[i] << '"';
      }
      out << "}";
      break;
    }
    case Tag::kSeq:
      out << "Seq(" << element_->to_string() << ")";
      break;
    case Tag::kSet:
      out << "SUBSET " << element_->to_string();
      break;
    case Tag::kRecord: {
      out << "[";
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out << ", ";
        out << fields_[i].first << ": " << fields_[i].second->to_string();
      }
      out << "]";
      break;
    }
    case Tag::kNullable:
      out << "NadirNullable(" << element_->to_string() << ")";
      break;
  }
  return out.str();
}

}  // namespace zenith::nadir
