#include "nadir/value.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/hash.h"

namespace zenith::nadir {

Value Value::integer(std::int64_t v) {
  Value out;
  out.kind_ = Kind::kInt;
  out.int_ = v;
  return out;
}

Value Value::boolean(bool v) {
  Value out;
  out.kind_ = Kind::kBool;
  out.int_ = v ? 1 : 0;
  return out;
}

Value Value::string(std::string v) {
  Value out;
  out.kind_ = Kind::kString;
  out.str_ = std::make_shared<const std::string>(std::move(v));
  return out;
}

Value Value::seq(ValueVec items) {
  Value out;
  out.kind_ = Kind::kSeq;
  out.items_ = std::make_shared<const ValueVec>(std::move(items));
  return out;
}

Value Value::set(ValueVec items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  Value out;
  out.kind_ = Kind::kSet;
  out.items_ = std::make_shared<const ValueVec>(std::move(items));
  return out;
}

Value Value::record(FieldMap fields) {
  Value out;
  out.kind_ = Kind::kRecord;
  out.fields_ = std::make_shared<const FieldMap>(std::move(fields));
  return out;
}

std::int64_t Value::as_int() const {
  assert(kind_ == Kind::kInt);
  return int_;
}

bool Value::as_bool() const {
  assert(kind_ == Kind::kBool);
  return int_ != 0;
}

const std::string& Value::as_string() const {
  assert(kind_ == Kind::kString);
  return *str_;
}

const ValueVec& Value::as_seq() const {
  assert(kind_ == Kind::kSeq);
  return *items_;
}

const ValueVec& Value::as_set() const {
  assert(kind_ == Kind::kSet);
  return *items_;
}

const FieldMap& Value::as_record() const {
  assert(kind_ == Kind::kRecord);
  return *fields_;
}

const Value& Value::field(const std::string& name) const {
  const auto& fields = as_record();
  auto it = fields.find(name);
  assert(it != fields.end() && "record field missing");
  return it->second;
}

Value Value::with_field(const std::string& name, Value v) const {
  FieldMap fields = as_record();
  fields[name] = std::move(v);
  return record(std::move(fields));
}

std::size_t Value::size() const {
  assert(kind_ == Kind::kSeq || kind_ == Kind::kSet);
  return items_->size();
}

const Value& Value::at(std::size_t i) const {
  assert(kind_ == Kind::kSeq || kind_ == Kind::kSet);
  assert(i < items_->size());
  return (*items_)[i];
}

Value Value::append(Value v) const {
  ValueVec items = as_seq();
  items.push_back(std::move(v));
  return seq(std::move(items));
}

Value Value::tail() const {
  const auto& items = as_seq();
  assert(!items.empty());
  return seq(ValueVec(items.begin() + 1, items.end()));
}

const Value& Value::head() const {
  const auto& items = as_seq();
  assert(!items.empty());
  return items.front();
}

bool Value::set_contains(const Value& v) const {
  const auto& items = as_set();
  return std::binary_search(items.begin(), items.end(), v);
}

Value Value::set_insert(Value v) const {
  ValueVec items = as_set();
  auto it = std::lower_bound(items.begin(), items.end(), v);
  if (it != items.end() && *it == v) return *this;
  items.insert(it, std::move(v));
  Value out;
  out.kind_ = Kind::kSet;
  out.items_ = std::make_shared<const ValueVec>(std::move(items));
  return out;
}

Value Value::set_erase(const Value& v) const {
  ValueVec items = as_set();
  auto it = std::lower_bound(items.begin(), items.end(), v);
  if (it == items.end() || !(*it == v)) return *this;
  items.erase(it);
  Value out;
  out.kind_ = Kind::kSet;
  out.items_ = std::make_shared<const ValueVec>(std::move(items));
  return out;
}

int Value::compare(const Value& a, const Value& b) {
  if (a.kind_ != b.kind_) {
    return static_cast<int>(a.kind_) < static_cast<int>(b.kind_) ? -1 : 1;
  }
  switch (a.kind_) {
    case Kind::kNull:
      return 0;
    case Kind::kInt:
    case Kind::kBool:
      if (a.int_ != b.int_) return a.int_ < b.int_ ? -1 : 1;
      return 0;
    case Kind::kString:
      return a.str_->compare(*b.str_);
    case Kind::kSeq:
    case Kind::kSet: {
      const auto& av = *a.items_;
      const auto& bv = *b.items_;
      for (std::size_t i = 0; i < std::min(av.size(), bv.size()); ++i) {
        int c = compare(av[i], bv[i]);
        if (c != 0) return c;
      }
      if (av.size() != bv.size()) return av.size() < bv.size() ? -1 : 1;
      return 0;
    }
    case Kind::kRecord: {
      const auto& af = *a.fields_;
      const auto& bf = *b.fields_;
      auto ai = af.begin();
      auto bi = bf.begin();
      for (; ai != af.end() && bi != bf.end(); ++ai, ++bi) {
        int c = ai->first.compare(bi->first);
        if (c != 0) return c;
        c = compare(ai->second, bi->second);
        if (c != 0) return c;
      }
      if (af.size() != bf.size()) return af.size() < bf.size() ? -1 : 1;
      return 0;
    }
  }
  return 0;
}

std::uint64_t Value::hash() const {
  Hasher h;
  h.add(static_cast<std::uint64_t>(kind_));
  switch (kind_) {
    case Kind::kNull:
      break;
    case Kind::kInt:
    case Kind::kBool:
      h.add(static_cast<std::uint64_t>(int_));
      break;
    case Kind::kString:
      h.add(fnv1a(*str_));
      break;
    case Kind::kSeq:
    case Kind::kSet:
      for (const Value& v : *items_) h.add(v.hash());
      break;
    case Kind::kRecord:
      for (const auto& [name, v] : *fields_) {
        h.add(fnv1a(name));
        h.add(v.hash());
      }
      break;
  }
  return h.digest();
}

std::string Value::to_string() const {
  std::ostringstream out;
  switch (kind_) {
    case Kind::kNull:
      out << "NADIR_NULL";
      break;
    case Kind::kInt:
      out << int_;
      break;
    case Kind::kBool:
      out << (int_ != 0 ? "TRUE" : "FALSE");
      break;
    case Kind::kString:
      out << '"' << *str_ << '"';
      break;
    case Kind::kSeq: {
      out << "<<";
      for (std::size_t i = 0; i < items_->size(); ++i) {
        if (i > 0) out << ", ";
        out << (*items_)[i].to_string();
      }
      out << ">>";
      break;
    }
    case Kind::kSet: {
      out << "{";
      for (std::size_t i = 0; i < items_->size(); ++i) {
        if (i > 0) out << ", ";
        out << (*items_)[i].to_string();
      }
      out << "}";
      break;
    }
    case Kind::kRecord: {
      out << "[";
      bool first = true;
      for (const auto& [name, v] : *fields_) {
        if (!first) out << ", ";
        first = false;
        out << name << " |-> " << v.to_string();
      }
      out << "]";
      break;
    }
  }
  return out.str();
}

const Value& choose(const Value& set) {
  const auto& items = set.as_set();
  assert(!items.empty() && "CHOOSE from empty set");
  return items.front();
}

}  // namespace zenith::nadir
