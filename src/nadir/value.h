// NadirValue: the dynamic value universe of NADIR specifications.
//
// NADIR (§5) consumes PlusCal specifications whose variables hold TLA+
// values: naturals, booleans, strings, sequences, sets and records. This is
// the C++ analogue: an immutable, structurally-shared variant. Immutability
// matters because the app-verification explorer snapshots whole environments
// per state; sharing makes snapshots cheap.
//
// NADIR_NULL from the paper is the distinguished nil value.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace zenith::nadir {

class Value;

using ValueVec = std::vector<Value>;
using FieldMap = std::map<std::string, Value>;  // ordered: canonical records

enum class Kind : std::uint8_t {
  kNull,
  kInt,
  kBool,
  kString,
  kSeq,     // ordered sequence <<...>>
  kSet,     // canonical sorted unique elements
  kRecord,  // [field |-> value]
};

class Value {
 public:
  /// NADIR_NULL.
  Value() : kind_(Kind::kNull) {}

  static Value nil() { return Value(); }
  static Value integer(std::int64_t v);
  static Value boolean(bool v);
  static Value string(std::string v);
  static Value seq(ValueVec items);
  static Value set(ValueVec items);  // sorts + dedups
  static Value record(FieldMap fields);

  Kind kind() const { return kind_; }
  bool is_nil() const { return kind_ == Kind::kNull; }

  std::int64_t as_int() const;
  bool as_bool() const;
  const std::string& as_string() const;
  const ValueVec& as_seq() const;
  const ValueVec& as_set() const;  // sorted
  const FieldMap& as_record() const;

  /// Record field access; dies on missing field (type annotations are
  /// supposed to rule that out — mirrors TLC's behaviour).
  const Value& field(const std::string& name) const;
  /// Functional record update.
  Value with_field(const std::string& name, Value v) const;

  // Sequence helpers (FIFO macros build on these).
  std::size_t size() const;
  const Value& at(std::size_t i) const;
  Value append(Value v) const;   // Append(seq, v)
  Value tail() const;            // Tail(seq)
  const Value& head() const;     // Head(seq)

  // Set helpers.
  bool set_contains(const Value& v) const;
  Value set_insert(Value v) const;
  Value set_erase(const Value& v) const;

  /// Total order over all values (kind-major), giving canonical set layout
  /// and deterministic CHOOSE.
  static int compare(const Value& a, const Value& b);
  friend bool operator==(const Value& a, const Value& b) {
    return compare(a, b) == 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return compare(a, b) < 0;
  }

  std::uint64_t hash() const;
  std::string to_string() const;

 private:
  Kind kind_;
  std::int64_t int_ = 0;  // also holds bool
  std::shared_ptr<const std::string> str_;
  std::shared_ptr<const ValueVec> items_;   // seq or set
  std::shared_ptr<const FieldMap> fields_;  // record
};

/// Deterministic CHOOSE x \in set: TRUE — returns the least element.
const Value& choose(const Value& set);

}  // namespace zenith::nadir
