// NADIR specification IR.
//
// A Spec is the machine-readable equivalent of an annotated PlusCal module:
//   * global variables — typed, optionally persistent. Persistent globals
//     are the paper's NIB-resident state: they survive component failures
//     (§5 "all persistent state is in the NIB").
//   * processes — independent threads of execution, each a list of *labeled
//     atomic steps* (a PlusCal label delimits one atomic transition).
//   * per-step access annotations — which globals a step may read/write.
//     These feed the Henry-Kafura complexity metric (Figure A.3), drive the
//     partial-order analysis, and are enforced at runtime (an access outside
//     the annotation aborts, the analogue of NADIR rejecting a spec whose
//     annotations don't match its body).
//
// Steps are written as C++ lambdas over a StepContext rather than parsed
// PlusCal text; the structure (labels, atomicity, FIFO macros, CHOOSE,
// AWAIT-as-block) is preserved exactly.
#pragma once

#include <cassert>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "nadir/type.h"
#include "nadir/value.h"

namespace zenith::nadir {

struct VariableDecl {
  std::string name;
  TypePtr type;
  Value initial;
  bool persistent = false;  // globals only: survives crash (NIB-backed)
};

/// Snapshot of all spec state: globals plus per-process (pc, locals).
class Env {
 public:
  struct ProcState {
    std::string pc;
    std::map<std::string, Value> locals;
    bool operator==(const ProcState&) const = default;
  };

  std::map<std::string, Value> globals;
  std::map<std::string, ProcState> procs;

  bool operator==(const Env&) const = default;
  std::uint64_t hash() const;
  std::string to_string() const;
};

class StepContext;
using StepFn = std::function<void(StepContext&)>;

struct Step {
  std::string label;
  std::vector<std::string> reads;   // globals this step may read
  std::vector<std::string> writes;  // globals this step may write
  StepFn fn;
};

/// Sentinel pc meaning the process has terminated.
inline const std::string kPcDone = "__done";

class Process {
 public:
  Process(std::string name, bool fair = true)
      : name_(std::move(name)), fair_(fair) {}

  const std::string& name() const { return name_; }
  bool fair() const { return fair_; }

  Process& local(std::string name, TypePtr type, Value initial);
  Process& step(Step step);

  const std::vector<VariableDecl>& locals() const { return locals_; }
  const std::vector<Step>& steps() const { return steps_; }

  const Step* find_step(const std::string& label) const;
  /// Label of the step after `label` in declaration order (or kPcDone).
  const std::string& next_label(const std::string& label) const;
  const std::string& initial_pc() const;

 private:
  std::string name_;
  bool fair_;
  std::vector<VariableDecl> locals_;
  std::vector<Step> steps_;
};

class Spec {
 public:
  explicit Spec(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  Spec& global(std::string name, TypePtr type, Value initial,
               bool persistent = false);
  Spec& process(Process process);

  const std::vector<VariableDecl>& globals() const { return globals_; }
  const std::vector<Process>& processes() const { return processes_; }
  const Process* find_process(const std::string& name) const;
  const VariableDecl* find_global(const std::string& name) const;

  /// Builds the initial environment and type-checks it.
  Result<Env> make_initial_env() const;

  /// TypeOK over a full environment: every global and local matches its
  /// annotation.
  Status check_types(const Env& env) const;

 private:
  std::string name_;
  std::vector<VariableDecl> globals_;
  std::vector<Process> processes_;
};

/// Execution context handed to a step body. All mutations buffer against a
/// working copy; the interpreter commits only if the step was not blocked.
class StepContext {
 public:
  StepContext(const Spec& spec, const Process& process, Env& env);

  // -- global access (annotation-enforced) ---------------------------------
  const Value& global(const std::string& name) const;
  void set_global(const std::string& name, Value v);

  // -- locals ----------------------------------------------------------------
  const Value& local(const std::string& name) const;
  void set_local(const std::string& name, Value v);

  // -- control flow -----------------------------------------------------------
  /// goto another label of this process; default is fallthrough to the next
  /// declared step.
  void jump(const std::string& label);
  /// Marks the process finished after this step.
  void finish() { jump(kPcDone); }

  /// AWAIT guard: when `cond` is false the step blocks — no state change,
  /// pc unchanged, to be retried later.
  void await(bool cond) {
    if (!cond) blocked_ = true;
  }
  bool blocked() const { return blocked_; }

  // -- FIFO macros over Seq-valued globals (FIFOPut / FIFOGet /
  //    AckQueueRead / AckQueuePop) -------------------------------------------
  bool fifo_empty(const std::string& name) const;
  void fifo_put(const std::string& name, Value v);
  /// FIFOGet with AWAIT semantics: blocks the step when empty.
  Value fifo_get(const std::string& name);
  /// AckQueueRead: copy of head, element remains queued; blocks when empty.
  Value fifo_peek(const std::string& name);
  /// AckQueuePop: drops the head read earlier.
  void fifo_ack_pop(const std::string& name);

 private:
  friend class Interpreter;

  void check_read(const std::string& name) const;
  void check_write(const std::string& name) const;

  const Spec& spec_;
  const Process& process_;
  Env& env_;  // working copy owned by the interpreter
  const Step* step_ = nullptr;
  std::string next_pc_;
  bool blocked_ = false;
};

}  // namespace zenith::nadir
