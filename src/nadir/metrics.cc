#include "nadir/metrics.h"

#include <set>

namespace zenith::nadir {

SpecMetrics measure(const Spec& spec) {
  SpecMetrics m;
  m.global_count = spec.globals().size();
  m.process_count = spec.processes().size();

  // Per-process read/write sets over globals.
  std::map<std::string, std::set<std::string>> reads;
  std::map<std::string, std::set<std::string>> writes;
  for (const Process& p : spec.processes()) {
    m.step_count += p.steps().size();
    m.local_count += p.locals().size();
    for (const Step& s : p.steps()) {
      reads[p.name()].insert(s.reads.begin(), s.reads.end());
      // A write implies potential read-modify-write; count both directions
      // the way information-flow analysis does.
      reads[p.name()].insert(s.writes.begin(), s.writes.end());
      writes[p.name()].insert(s.writes.begin(), s.writes.end());
    }
  }

  for (const Process& p : spec.processes()) {
    ProcessComplexity c;
    c.length = p.steps().size();
    for (const std::string& g : reads[p.name()]) {
      for (const Process& other : spec.processes()) {
        if (other.name() == p.name()) continue;
        if (writes[other.name()].count(g)) {
          ++c.fanin;
          break;  // count each global once
        }
      }
    }
    for (const std::string& g : writes[p.name()]) {
      for (const Process& other : spec.processes()) {
        if (other.name() == p.name()) continue;
        if (reads[other.name()].count(g)) {
          ++c.fanout;
          break;
        }
      }
    }
    std::uint64_t flow = static_cast<std::uint64_t>(c.fanin) *
                         static_cast<std::uint64_t>(c.fanout);
    c.henry_kafura = static_cast<std::uint64_t>(c.length) * flow * flow;
    m.total_henry_kafura += c.henry_kafura;
    m.per_process[p.name()] = c;
  }
  return m;
}

}  // namespace zenith::nadir
