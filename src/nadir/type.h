// NADIR type annotations (§5, Listing 8).
//
// PlusCal is untyped; NADIR requires developers to annotate every variable
// before code generation. Here a NadirType is a structural descriptor with a
// runtime check(value) predicate — the exact role the paper's TypeOK
// invariant plays: annotations double as a model-checked invariant, and the
// generated runtime re-validates them at every step boundary.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nadir/value.h"

namespace zenith::nadir {

class Type;
using TypePtr = std::shared_ptr<const Type>;

class Type {
 public:
  enum class Tag {
    kInt,       // Nat / Int
    kBool,
    kString,
    kEnum,      // finite string constants, e.g. OP status names
    kSeq,       // Seq(T)
    kSet,       // SUBSET T
    kRecord,    // [f1: T1, ..., fn: Tn]
    kNullable,  // NadirNullable(T): T or NADIR_NULL
  };

  static TypePtr integer();
  static TypePtr boolean();
  static TypePtr string();
  static TypePtr enumeration(std::vector<std::string> members);
  static TypePtr seq(TypePtr element);
  static TypePtr set(TypePtr element);
  static TypePtr record(std::vector<std::pair<std::string, TypePtr>> fields);
  static TypePtr nullable(TypePtr inner);

  Tag tag() const { return tag_; }

  /// Structural membership test — the runtime TypeOK.
  bool check(const Value& v) const;

  /// TLA+-ish rendering, e.g. "Seq([sw: Nat, op: Nat])".
  std::string to_string() const;

 private:
  explicit Type(Tag tag) : tag_(tag) {}

  Tag tag_;
  std::vector<std::string> enum_members_;
  TypePtr element_;
  std::vector<std::pair<std::string, TypePtr>> fields_;
};

}  // namespace zenith::nadir
