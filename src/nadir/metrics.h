// Specification metrics.
//
// Two uses in the paper's evaluation:
//  * Table A.1 — specification sizes (we report step/variable counts of our
//    spec IR alongside the paper's PlusCal/TLA+ line counts).
//  * Figure A.3 — Henry-Kafura information-flow complexity per component:
//      complexity(P) = length(P) * (fanin(P) * fanout(P))^2
//    where fanin counts global variables written by some other process and
//    read by P, and fanout counts globals written by P and read elsewhere.
//    Length is the number of labeled steps. The read/write sets come from
//    the per-step annotations, which the interpreter enforces, so the metric
//    measures the spec that actually runs.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "nadir/spec.h"

namespace zenith::nadir {

struct ProcessComplexity {
  std::size_t length = 0;   // labeled steps
  std::size_t fanin = 0;    // globals read here, written elsewhere
  std::size_t fanout = 0;   // globals written here, read elsewhere
  std::uint64_t henry_kafura = 0;
};

struct SpecMetrics {
  std::size_t global_count = 0;
  std::size_t process_count = 0;
  std::size_t step_count = 0;       // total labeled steps ("PlusCal lines")
  std::size_t local_count = 0;
  std::map<std::string, ProcessComplexity> per_process;
  std::uint64_t total_henry_kafura = 0;
};

SpecMetrics measure(const Spec& spec);

}  // namespace zenith::nadir
