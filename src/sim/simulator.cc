#include "sim/simulator.h"

#include <cassert>
#include <memory>
#include <utility>

namespace zenith {

Simulator::EventHandle Simulator::schedule_at(SimTime when, Action action) {
  assert(when >= now_);
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(action), cancelled});
  return EventHandle(std::move(cancelled));
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    // priority_queue::top() is const; move out via const_cast of a copy-free
    // pattern: take a copy of the small members and move the action.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    if (!*ev.cancelled) {
      ev.action();
      ++executed;
      ++executed_;
    }
  }
  if (queue_.empty() || queue_.top().when > deadline) {
    now_ = std::max(now_, deadline);
  }
  return executed;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.when;
    if (!*ev.cancelled) {
      ev.action();
      ++executed;
      ++executed_;
    }
  }
  return executed;
}

}  // namespace zenith
