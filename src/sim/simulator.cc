#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace zenith {

std::uint32_t Simulator::acquire_slot(Action action) {
  if (free_head_ != kNoSlot) {
    std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].action = std::move(action);
    slots_[slot].next_free = kNoSlot;
    return slot;
  }
  slots_.push_back(Slot{std::move(action), /*generation=*/0, kNoSlot});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  Slot& record = slots_[slot];
  ++record.generation;       // invalidates handles and queued entries
  record.action = nullptr;   // drop the closure's captures promptly
  record.next_free = free_head_;
  free_head_ = slot;
}

Simulator::EventHandle Simulator::schedule_at(SimTime when, Action action) {
  assert(when >= now_);
  std::uint32_t slot = acquire_slot(std::move(action));
  std::uint64_t generation = slots_[slot].generation;
  queue_.push(QueuedEvent{when, next_seq_++, slot, generation});
  return EventHandle(this, slot, generation);
}

bool Simulator::pop_top(Action* action) {
  const QueuedEvent& top = queue_.top();
  bool is_live = live(top.slot, top.generation);
  if (is_live) {
    // Move the action out and release the slot *before* running it: the
    // action may schedule (reusing this slot) or cancel, and a self-cancel
    // must be a harmless generation mismatch.
    *action = std::move(slots_[top.slot].action);
    release_slot(top.slot);
  }
  queue_.pop();
  return is_live;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t executed = 0;
  Action action;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    now_ = queue_.top().when;
    if (pop_top(&action)) {
      action();
      action = nullptr;  // match the old per-iteration closure lifetime
      ++executed;
      ++executed_;
    }
  }
  if (queue_.empty() || queue_.top().when > deadline) {
    now_ = std::max(now_, deadline);
  }
  return executed;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  Action action;
  while (!queue_.empty()) {
    now_ = queue_.top().when;
    if (pop_top(&action)) {
      action();
      action = nullptr;  // match the old per-iteration closure lifetime
      ++executed;
      ++executed_;
    }
  }
  return executed;
}

}  // namespace zenith
