// Deterministic discrete-event simulation kernel.
//
// This is the substrate that stands in for the paper's Sphere testbed: all
// switches, channels, controller components, failure injectors and traffic
// probes run as events on a single logical clock. Determinism comes from
// (time, sequence-number) ordering of events; two runs with equal seeds are
// identical.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/ids.h"

namespace zenith {

class Simulator {
 public:
  using Action = std::function<void()>;
  /// Token that can cancel a scheduled event.
  class EventHandle {
   public:
    EventHandle() = default;
    bool valid() const { return cancel_flag_ != nullptr; }
    /// Cancels the event if it has not fired yet. Safe to call repeatedly.
    void cancel() {
      if (cancel_flag_) *cancel_flag_ = true;
    }

   private:
    friend class Simulator;
    explicit EventHandle(std::shared_ptr<bool> flag)
        : cancel_flag_(std::move(flag)) {}
    std::shared_ptr<bool> cancel_flag_;
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` after the current time.
  EventHandle schedule(SimTime delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Schedules `action` at an absolute time (>= now).
  EventHandle schedule_at(SimTime when, Action action);

  /// Runs events until the queue is empty or the clock passes `deadline`.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime deadline);

  /// Runs until the event queue drains entirely.
  std::size_t run();

  /// True when no future events remain.
  bool idle() const { return queue_.empty(); }

  std::size_t executed_events() const { return executed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Action action;
    std::shared_ptr<bool> cancelled;

    // Min-heap by (when, seq): FIFO among simultaneous events.
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace zenith
