// Deterministic discrete-event simulation kernel.
//
// This is the substrate that stands in for the paper's Sphere testbed: all
// switches, channels, controller components, failure injectors and traffic
// probes run as events on a single logical clock. Determinism comes from
// (time, sequence-number) ordering of events; two runs with equal seeds are
// identical.
//
// Scheduled actions live in a slab of pooled event records addressed by
// generation-counted handles: the heap orders plain (time, seq, slot)
// entries and cancellation is an O(1) generation bump, so the innermost
// loop performs no per-event heap allocation beyond what the action's own
// closure needs (the previous implementation allocated a shared_ptr<bool>
// cancel flag per event and carried the std::function through the heap).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "common/ids.h"

namespace zenith {

class Simulator {
 public:
  using Action = std::function<void()>;
  /// Token that can cancel a scheduled event. Handles are generation-
  /// checked: once the event fires, is cancelled, or its slot is reused by
  /// a later event, cancel() on a stale handle is a no-op. A handle must
  /// not outlive its Simulator.
  class EventHandle {
   public:
    EventHandle() = default;
    bool valid() const { return sim_ != nullptr; }
    /// Cancels the event if it has not fired yet. Safe to call repeatedly.
    void cancel();

   private:
    friend class Simulator;
    EventHandle(Simulator* sim, std::uint32_t slot, std::uint64_t generation)
        : sim_(sim), slot_(slot), generation_(generation) {}
    Simulator* sim_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint64_t generation_ = 0;
  };

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `action` to run `delay` after the current time.
  EventHandle schedule(SimTime delay, Action action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Schedules `action` at an absolute time (>= now).
  EventHandle schedule_at(SimTime when, Action action);

  /// Runs events until the queue is empty or the clock passes `deadline`.
  /// Returns the number of events executed.
  std::size_t run_until(SimTime deadline);

  /// Runs until the event queue drains entirely.
  std::size_t run();

  /// True when no future events remain.
  bool idle() const { return queue_.empty(); }

  std::size_t executed_events() const { return executed_; }

  /// Slab capacity (live + free pooled records); grows to the high-water
  /// mark of concurrently scheduled events and is then reused. Exposed for
  /// tests and the slab microbenchmark.
  std::size_t slab_size() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNoSlot =
      std::numeric_limits<std::uint32_t>::max();

  /// Pooled event record. `generation` increments every time the slot is
  /// released, invalidating outstanding handles and queue entries.
  struct Slot {
    Action action;
    std::uint64_t generation = 0;
    std::uint32_t next_free = kNoSlot;
  };

  /// Heap entry: 32 bytes, trivially movable, no ownership. The action
  /// stays in the slab; `generation` detects slots released by cancel().
  struct QueuedEvent {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint64_t generation;

    // Min-heap by (when, seq): FIFO among simultaneous events.
    bool operator>(const QueuedEvent& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::uint32_t acquire_slot(Action action);
  void release_slot(std::uint32_t slot);
  /// True when the queue entry / handle still addresses the event it was
  /// created for (the slot has not been cancelled, fired, or reused).
  bool live(std::uint32_t slot, std::uint64_t generation) const {
    return slots_[slot].generation == generation;
  }
  /// Pops the top entry; returns true (with the action moved out) when the
  /// event is live, false when it was a cancelled slot's stale entry.
  bool pop_top(Action* action);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, std::greater<>>
      queue_;
};

inline void Simulator::EventHandle::cancel() {
  if (sim_ == nullptr || !sim_->live(slot_, generation_)) return;
  sim_->release_slot(slot_);  // generation bump: the queue entry goes stale
}

}  // namespace zenith
