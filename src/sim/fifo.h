// FIFO queues used for all inter-component communication.
//
// Two flavours mirror the paper's NADIR runtime primitives:
//  * NadirFifo<T>      — FIFOPut / FIFOGet plus the crash-safe
//                        AckQueueRead / AckQueuePop discipline (§3.9,
//                        Listing 3): a consumer reads the head without
//                        removing it, processes, then acknowledges. A crash
//                        between read and ack re-delivers the element.
//  * DelayedChannel<T> — a NadirFifo fed through a propagation delay, used
//                        for controller<->switch links (§3.5 SWInQ/SWOutQ).
//                        The delay models the "non-deterministic
//                        communication latency" the TLC model checker
//                        explores; in simulation it is drawn from a seeded
//                        distribution.
#pragma once

#include <cassert>
#include <deque>
#include <functional>
#include <optional>
#include <utility>

#include "common/ids.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace zenith {

template <typename T>
class NadirFifo {
 public:
  using WakeCallback = std::function<void()>;

  /// Registers a callback fired whenever the queue transitions from empty to
  /// non-empty; consumers use it to schedule their service step.
  void set_wake_callback(WakeCallback cb) { wake_ = std::move(cb); }

  /// FIFOPut.
  void push(T item) {
    bool was_empty = items_.empty();
    items_.push_back(std::move(item));
    if (was_empty && wake_) wake_();
  }

  /// FIFOGet: removes and returns the head. Caller must check empty() first.
  T pop() {
    assert(!items_.empty());
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// AckQueueRead: returns a copy of the head without removing it.
  const T& peek() const {
    assert(!items_.empty());
    return items_.front();
  }

  /// AckQueuePop: removes the head previously obtained via peek().
  void ack_pop() {
    assert(!items_.empty());
    items_.pop_front();
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  void clear() { items_.clear(); }

  /// Iteration support (used by reconciliation and by tests to inspect
  /// in-flight contents; the real systems equivalent is a queue dump).
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  std::deque<T> items_;
  WakeCallback wake_;
};

/// Distribution of one-way message latencies on a channel.
struct DelayModel {
  SimTime base = millis(0.5);
  SimTime jitter = millis(0.5);  // uniform in [0, jitter)

  SimTime sample(Rng& rng) const {
    if (jitter <= 0) return base;
    return base + static_cast<SimTime>(
                      rng.next_below(static_cast<std::uint64_t>(jitter)));
  }
};

/// A unidirectional channel: send() delivers into the destination fifo after
/// a sampled delay. Messages in flight when the channel is dropped (e.g.
/// destination switch lost power) can be flushed.
template <typename T>
class DelayedChannel {
 public:
  DelayedChannel(Simulator* sim, Rng rng, DelayModel delay)
      : sim_(sim), rng_(std::move(rng)), delay_(delay) {}

  NadirFifo<T>& sink() { return sink_; }
  const NadirFifo<T>& sink() const { return sink_; }

  /// Sends a message; it appears in sink() after the sampled delay unless
  /// the channel generation is bumped (drop_in_flight) first.
  void send(T msg) {
    SimTime delay = delay_.sample(rng_);
    // Enforce FIFO per channel even with jittered delays: a message may not
    // overtake a previously sent one (models TCP-like ordered delivery that
    // OpenFlow relies on; property P4 part (1) depends on this).
    SimTime deliver_at = std::max(sim_->now() + delay, last_delivery_);
    last_delivery_ = deliver_at;
    std::uint64_t generation = generation_;
    sim_->schedule_at(deliver_at, [this, generation, m = std::move(msg)]() mutable {
      if (generation == generation_) sink_.push(std::move(m));
    });
  }

  /// Drops every message currently in flight (and any queued in the sink).
  /// Used when a switch fails completely: its inbound queue contents are
  /// part of the state it loses (§3.5 "State loss").
  void drop_in_flight() {
    ++generation_;
    sink_.clear();
    last_delivery_ = sim_->now();
  }

 private:
  Simulator* sim_;
  Rng rng_;
  DelayModel delay_;
  NadirFifo<T> sink_;
  SimTime last_delivery_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace zenith
