#include "repl/repl.h"

#include <algorithm>
#include <sstream>

namespace zenith::repl {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (i * 8)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

std::size_t quorum_of(std::size_t replicas) { return replicas / 2 + 1; }

bool same_payload(const LogEntry& a, const LogEntry& b) {
  if (a.index != b.index || a.sw != b.sw || a.ops.size() != b.ops.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    if (a.ops[i].id != b.ops[i].id) return false;
  }
  return true;
}

}  // namespace

// ---- Shard ------------------------------------------------------------------

Shard::Shard(Simulator* sim, const ReplConfig& config, std::size_t id)
    : sim_(sim), config_(config), id_(id) {
  std::size_t n = std::max<std::size_t>(1, config_.replicas_per_shard);
  replicas_.resize(n);
  match_.assign(n, 0);
  eventual_seen_.assign(n, 0);
  // Replica 0 starts as leader of epoch 1 with a fresh lease everywhere.
  for (Replica& r : replicas_) {
    r.epoch = 1;
    r.lease_expiry = sim_->now() + config_.lease_duration;
  }
}

bool Shard::leader_serving() const {
  return leader_ >= 0 &&
         static_cast<std::size_t>(leader_) < replicas_.size() &&
         replicas_[static_cast<std::size_t>(leader_)].alive;
}

const LogEntry* Shard::entry_at(const Replica& r, std::uint64_t index) const {
  if (index <= r.snapshot_index || index > r.log_end()) return nullptr;
  const LogEntry& entry = r.log[static_cast<std::size_t>(
      index - r.snapshot_index - 1)];
  return &entry;
}

bool Shard::link_up(std::size_t a, std::size_t b) const {
  const Replica& ra = replicas_[a];
  const Replica& rb = replicas_[b];
  return ra.alive && rb.alive && !ra.partitioned && !rb.partitioned;
}

void Shard::submit(SwitchId sw, std::vector<Op> ops) {
  if (!leader_serving()) {
    // No live leader to accept the ACK: it is lost with the dead instance's
    // sockets. The takeover requeue re-drives the affected OPs (still SENT).
    ++counters_.acks_dropped_no_leader;
    if (event_hook_) {
      event_hook_("ack-dropped",
                  "shard=" + std::to_string(id_) + " sw=" +
                      std::to_string(sw.value()) + " no live leader");
    }
    return;
  }
  Replica& leader = leader_replica();
  LogEntry entry;
  entry.index = leader.log_end() + 1;
  entry.epoch = epoch_;
  entry.sw = sw;
  entry.ops = std::move(ops);
  leader.log.push_back(entry);
  ++counters_.appends;
  match_[static_cast<std::size_t>(leader_)] = leader.log_end();
  if (config_.bug_commit_before_quorum) {
    // Deliberate defect: commit (and apply to the NIB) the moment the entry
    // hits the leader's log, before any follower holds a copy. Losing the
    // leader now loses committed state — R2's violation.
    leader.commit_index = std::max(leader.commit_index, entry.index);
    apply_committed();
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (static_cast<int>(i) == leader_) continue;
    sim_->schedule(config_.replication_hop,
                   [this, from = static_cast<std::size_t>(leader_), to = i,
                    entry, epoch = epoch_] {
                     deliver_append(from, to, entry, epoch);
                   });
  }
  advance_commit();  // replicas_per_shard == 1 commits on append
}

void Shard::note_eventual(std::size_t ops) {
  eventual_submitted_ += ops;
  counters_.eventual_submits += ops;
  // Stream the new prefix to every replica, one hop away. Deliberately NOT
  // gated on leader_serving(): the eventual stream is the leader-
  // independent path — a shard mid-election still learns of eventual
  // commits (dead/partitioned replicas skip the delivery; the per-tick
  // anti-entropy below catches them up after heal/revive).
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    sim_->schedule(config_.replication_hop,
                   [this, to = i, target = eventual_submitted_] {
                     Replica& r = replicas_[to];
                     if (!r.alive || r.partitioned) return;
                     eventual_seen_[to] = std::max(eventual_seen_[to], target);
                   });
  }
}

void Shard::tick() {
  if (leader_serving() && !stalled_) {
    send_heartbeats();
    send_catchups();
  }
  // Eventual-stream anti-entropy (PR 10): replicas that missed deliveries
  // while dead or partitioned chase the committed prefix one hop per tick.
  // Free in all-strong mode (the prefix stays 0, no replica ever lags).
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const Replica& r = replicas_[i];
    if (!r.alive || r.partitioned) continue;
    if (eventual_seen_[i] >= eventual_submitted_) continue;
    sim_->schedule(config_.replication_hop,
                   [this, to = i, target = eventual_submitted_] {
                     Replica& rep = replicas_[to];
                     if (!rep.alive || rep.partitioned) return;
                     eventual_seen_[to] = std::max(eventual_seen_[to], target);
                   });
  }
  maybe_elect();
}

void Shard::send_heartbeats() {
  const Replica& leader = leader_replica();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (static_cast<int>(i) == leader_) continue;
    sim_->schedule(config_.replication_hop,
                   [this, from = static_cast<std::size_t>(leader_), to = i,
                    epoch = epoch_, commit = leader.commit_index] {
                     deliver_heartbeat(from, to, epoch, commit);
                   });
  }
}

void Shard::send_catchups() {
  Replica& leader = leader_replica();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (static_cast<int>(i) == leader_) continue;
    const Replica& r = replicas_[i];
    if (!r.alive || r.partitioned) continue;
    if (r.epoch == epoch_ && match_[i] >= leader.log_end()) continue;
    CatchupPayload payload;
    std::uint64_t base = std::min(r.commit_index, leader.log_end());
    std::uint64_t lag = leader.commit_index > r.log_end()
                            ? leader.commit_index - r.log_end()
                            : 0;
    if (base < leader.snapshot_index || lag > config_.snapshot_lag_threshold) {
      // Too far behind for an entry stream (or the entries are compacted
      // away on the leader): install a snapshot of the committed prefix and
      // ship the uncommitted suffix alongside.
      payload.snapshot = true;
      payload.snapshot_index = leader.commit_index;
      for (const LogEntry& entry : leader.log) {
        if (entry.index > leader.commit_index) payload.entries.push_back(entry);
      }
    } else {
      payload.base = base;
      for (const LogEntry& entry : leader.log) {
        if (entry.index > base) payload.entries.push_back(entry);
      }
    }
    sim_->schedule(config_.replication_hop,
                   [this, from = static_cast<std::size_t>(leader_), to = i,
                    payload = std::move(payload), epoch = epoch_,
                    commit = leader.commit_index]() mutable {
                     deliver_catchup(from, to, std::move(payload), epoch,
                                     commit);
                   });
  }
}

void Shard::maybe_elect() {
  if (replicas_.size() <= 1) return;
  const SimTime now = sim_->now();
  bool expired = false;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (static_cast<int>(i) == leader_) continue;
    const Replica& r = replicas_[i];
    if (r.alive && !r.partitioned && now >= r.lease_expiry) {
      expired = true;
      break;
    }
  }
  if (!expired) return;

  // A follower's lease ran out: the leader is dead, partitioned or wedged
  // (or a partition just healed and no heartbeat has landed yet). Elect the
  // most up-to-date reachable replica — the up-to-date rule guarantees the
  // winner holds every quorum-committed entry. A wedged (stalled) leader is
  // not a candidate: its process cannot campaign.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const Replica& r = replicas_[i];
    if (!r.alive || r.partitioned) continue;
    if (static_cast<int>(i) == leader_ && stalled_) continue;
    candidates.push_back(i);
  }
  if (candidates.size() < quorum_of(replicas_.size())) return;  // retry later
  std::size_t winner = candidates.front();
  for (std::size_t i : candidates) {
    if (replicas_[i].log_end() > replicas_[winner].log_end()) winner = i;
  }
  become_leader(winner, "election");
}

void Shard::become_leader(std::size_t winner, const char* reason) {
  ++epoch_;
  leader_ = static_cast<int>(winner);
  stalled_ = false;  // leadership moved to (or restarted on) a live process
  const SimTime now = sim_->now();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    Replica& r = replicas_[i];
    match_[i] = 0;
    if (!r.alive || r.partitioned) continue;  // will re-join via catch-up
    r.epoch = epoch_;
    r.lease_expiry = now + config_.lease_duration;
  }
  match_[winner] = replicas_[winner].log_end();
  ++counters_.elections;
  election_history_.emplace_back(epoch_, leader_);
  if (event_hook_) {
    event_hook_("leader-change",
                "shard=" + std::to_string(id_) + " epoch=" +
                    std::to_string(epoch_) + " leader=r" +
                    std::to_string(winner) + " reason=" + reason);
  }
  // Exactly-once re-enqueue: ACKs lost with the old leader (dropped at
  // submit, or appended but never committed and later truncated) leave their
  // OPs in SENT. After the new leader has had one replication round trip to
  // re-drive and commit its inherited suffix, the controller re-issues
  // whatever is still SENT on this shard's switches.
  sim_->schedule(config_.takeover_requeue_delay,
                 [this, epoch = epoch_, reason] {
                   if (epoch == epoch_ && on_takeover_) {
                     on_takeover_(epoch, reason);
                   }
                 });
}

void Shard::deliver_append(std::size_t from, std::size_t to, LogEntry entry,
                           std::uint64_t epoch) {
  if (epoch != epoch_) {
    ++counters_.stale_messages;
    return;
  }
  if (!link_up(from, to)) return;
  Replica& r = replicas_[to];
  if (entry.index == r.log_end() + 1) {
    r.log.push_back(std::move(entry));
    r.epoch = epoch_;
  } else if (entry.index <= r.log_end()) {
    const LogEntry* held = entry_at(r, entry.index);
    if (held != nullptr && held->epoch != entry.epoch) {
      // Conflicting uncommitted suffix from a previous epoch: truncate back
      // to the committed prefix; the leader's catch-up rebuilds the rest.
      while (!r.log.empty() && r.log.back().index > r.commit_index) {
        r.log.pop_back();
      }
    }
    // else: duplicate of an entry we already hold — ack as usual.
  }
  // else: a gap (an earlier append was lost); catch-up will fill it. Ack the
  // cumulative position either way.
  sim_->schedule(config_.replication_hop,
                 [this, from = to, match = r.log_end(), epoch] {
                   deliver_ack(from, match, epoch);
                 });
}

void Shard::deliver_catchup(std::size_t from, std::size_t to,
                            CatchupPayload payload, std::uint64_t epoch,
                            std::uint64_t leader_commit) {
  if (epoch != epoch_) {
    ++counters_.stale_messages;
    return;
  }
  if (!link_up(from, to)) return;
  Replica& r = replicas_[to];
  if (payload.snapshot) {
    r.snapshot_index = payload.snapshot_index;
    r.log = std::move(payload.entries);
    r.commit_index = payload.snapshot_index;
    r.applied_index = payload.snapshot_index;
    ++counters_.snapshots_installed;
    if (event_hook_) {
      event_hook_("snapshot-install",
                  "shard=" + std::to_string(id_) + " replica=r" +
                      std::to_string(to) + " base=" +
                      std::to_string(payload.snapshot_index));
    }
  } else {
    // Overwrite everything above the committed base with the leader's
    // entries (committed prefixes never conflict; the uncommitted suffix may
    // and loses to the leader's copy).
    while (!r.log.empty() && r.log.back().index > payload.base) {
      r.log.pop_back();
    }
    for (LogEntry& entry : payload.entries) {
      if (entry.index == r.log_end() + 1) r.log.push_back(std::move(entry));
    }
  }
  r.epoch = epoch_;
  std::uint64_t commit = std::min(leader_commit, r.log_end());
  if (commit > r.commit_index) {
    r.commit_index = commit;
    r.applied_index = commit;
  }
  sim_->schedule(config_.replication_hop,
                 [this, from = to, match = r.log_end(), epoch] {
                   deliver_ack(from, match, epoch);
                 });
}

void Shard::deliver_heartbeat(std::size_t from, std::size_t to,
                              std::uint64_t epoch,
                              std::uint64_t leader_commit) {
  if (epoch != epoch_) {
    ++counters_.stale_messages;
    return;
  }
  if (!link_up(from, to)) return;
  Replica& r = replicas_[to];
  r.lease_expiry = sim_->now() + config_.lease_duration;
  r.epoch = epoch_;
  std::uint64_t commit = std::min(leader_commit, r.log_end());
  if (commit > r.commit_index) {
    r.commit_index = commit;
    r.applied_index = commit;
  }
}

void Shard::deliver_ack(std::size_t from, std::uint64_t match,
                        std::uint64_t epoch) {
  if (epoch != epoch_) {
    ++counters_.stale_messages;
    return;
  }
  if (!leader_serving()) return;
  if (!link_up(from, static_cast<std::size_t>(leader_))) return;
  if (match > match_[from]) match_[from] = match;
  advance_commit();
}

void Shard::advance_commit() {
  if (!leader_serving()) return;
  Replica& leader = leader_replica();
  std::vector<std::uint64_t> sorted = match_;
  std::sort(sorted.begin(), sorted.end(), std::greater<std::uint64_t>());
  std::uint64_t quorum_match = sorted[quorum_of(replicas_.size()) - 1];
  std::uint64_t commit = std::min(quorum_match, leader.log_end());
  if (commit > leader.commit_index) {
    leader.commit_index = commit;
    leader.applied_index = commit;
    apply_committed();
  }
}

void Shard::apply_committed() {
  if (!leader_serving()) return;
  Replica& leader = leader_replica();
  leader.applied_index = leader.commit_index;
  while (applied_to_nib_ < leader.commit_index) {
    const LogEntry* entry = entry_at(leader, applied_to_nib_ + 1);
    if (entry == nullptr) break;  // compacted below the watermark: impossible
                                  // by construction, defensively do nothing
    applied_log_.push_back(*entry);
    ++applied_to_nib_;
    ++counters_.commits;
    if (apply_) apply_(*entry);
  }
}

void Shard::kill_leader() {
  if (!leader_serving()) return;
  leader_replica().alive = false;
  if (event_hook_) {
    event_hook_("leader-killed", "shard=" + std::to_string(id_) + " r" +
                                     std::to_string(leader_) + " epoch=" +
                                     std::to_string(epoch_));
  }
}

void Shard::revive_all() {
  bool leader_revived = false;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    Replica& r = replicas_[i];
    if (r.alive) continue;
    r.alive = true;
    r.lease_expiry = sim_->now() + config_.lease_duration;
    if (static_cast<int>(i) == leader_) leader_revived = true;
  }
  if (leader_revived) {
    // The leader came back before anyone was elected in its place (lease
    // still running, or no quorum without it). It resumes leadership as a
    // restarted process: new epoch — stale pre-crash traffic must not count
    // toward quorum — and a takeover requeue for the ACKs dropped while it
    // was down.
    become_leader(static_cast<std::size_t>(leader_), "revive");
  }
}

void Shard::partition_leader() {
  if (leader_ < 0 || !replicas_[static_cast<std::size_t>(leader_)].alive) {
    return;
  }
  replicas_[static_cast<std::size_t>(leader_)].partitioned = true;
  if (event_hook_) {
    event_hook_("leader-partitioned",
                "shard=" + std::to_string(id_) + " r" +
                    std::to_string(leader_) + " epoch=" +
                    std::to_string(epoch_));
  }
}

void Shard::heal_all() {
  for (Replica& r : replicas_) r.partitioned = false;
}

std::vector<std::string> Shard::check_invariants(bool at_quiescence) const {
  std::vector<std::string> violations;
  const std::string prefix = "shard " + std::to_string(id_) + ": ";
  const std::size_t quorum = quorum_of(replicas_.size());

  // R1 — the applied sequence is contiguous and applied exactly once.
  if (applied_log_.size() != applied_to_nib_) {
    violations.push_back(prefix + "applied journal size " +
                         std::to_string(applied_log_.size()) +
                         " != watermark " + std::to_string(applied_to_nib_));
  }
  for (std::size_t k = 0; k < applied_log_.size(); ++k) {
    if (applied_log_[k].index != k + 1) {
      violations.push_back(prefix + "applied entry #" + std::to_string(k) +
                           " has index " +
                           std::to_string(applied_log_[k].index) +
                           " (R1: contiguous exactly-once apply)");
      break;
    }
  }

  // R2 — every NIB-applied entry is durably held by a quorum of replica
  // logs, content-identical. Commit-before-quorum plus a lost leader leaves
  // applied entries nowhere: the defect this invariant exists to catch.
  for (const LogEntry& applied : applied_log_) {
    std::size_t holders = 0;
    for (const Replica& r : replicas_) {
      if (applied.index <= r.snapshot_index) {
        ++holders;  // compacted into a leader-committed snapshot
        continue;
      }
      const LogEntry* held = entry_at(r, applied.index);
      if (held != nullptr && same_payload(*held, applied)) ++holders;
    }
    if (holders < quorum) {
      violations.push_back(
          prefix + "applied entry " + std::to_string(applied.index) + " (sw" +
          std::to_string(applied.sw.value()) + ", " +
          std::to_string(applied.ops.size()) + " ops) held by only " +
          std::to_string(holders) + "/" + std::to_string(quorum) +
          " replica logs (R2: committed implies quorum-durable)");
    }
  }

  // R3 — epochs only move forward, one leader per epoch.
  std::uint64_t previous_epoch = 1;
  for (const auto& [epoch, leader] : election_history_) {
    if (epoch <= previous_epoch) {
      violations.push_back(prefix + "election to epoch " +
                           std::to_string(epoch) + " did not advance past " +
                           std::to_string(previous_epoch) +
                           " (R3: strictly increasing epochs)");
    }
    previous_epoch = epoch;
  }

  // R4 — quiescent convergence: the reachable replica set agrees with the
  // leader, and the leader's committed log is exactly what reached the NIB.
  // Skipped when no live un-partitioned leader exists (a shrunk schedule may
  // legally orphan kills past quorum loss; the campaign's own eventual-
  // consistency oracle reports that as non-convergence).
  if (at_quiescence && leader_serving() &&
      !replicas_[static_cast<std::size_t>(leader_)].partitioned) {
    const Replica& leader = replicas_[static_cast<std::size_t>(leader_)];
    std::size_t reachable = 0;
    for (const Replica& r : replicas_) {
      if (r.alive && !r.partitioned) ++reachable;
    }
    if (reachable >= quorum) {
      if (leader.commit_index != leader.log_end() ||
          applied_to_nib_ != leader.commit_index) {
        violations.push_back(
            prefix + "leader log_end=" + std::to_string(leader.log_end()) +
            " commit=" + std::to_string(leader.commit_index) + " applied=" +
            std::to_string(applied_to_nib_) +
            " not converged (R4: quiescent logs drain to the NIB)");
      }
      for (std::size_t i = 0; i < replicas_.size(); ++i) {
        const Replica& r = replicas_[i];
        if (!r.alive || r.partitioned) continue;
        if (r.epoch != epoch_ || r.log_end() != leader.log_end() ||
            r.commit_index != leader.commit_index) {
          violations.push_back(
              prefix + "replica r" + std::to_string(i) + " (epoch " +
              std::to_string(r.epoch) + ", log_end " +
              std::to_string(r.log_end()) + ", commit " +
              std::to_string(r.commit_index) +
              ") diverged from leader at quiescence (R4)");
        }
      }
    }
  }

  // E-stream sanity (PR 10): a replica cursor never runs ahead of the
  // committed eventual prefix, and at quiescence every live un-partitioned
  // replica has caught up (anti-entropy has had time to drain).
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (eventual_seen_[i] > eventual_submitted_) {
      violations.push_back(prefix + "replica r" + std::to_string(i) +
                           " eventual cursor " +
                           std::to_string(eventual_seen_[i]) +
                           " ahead of submitted prefix " +
                           std::to_string(eventual_submitted_));
    }
    if (at_quiescence && replicas_[i].alive && !replicas_[i].partitioned &&
        eventual_seen_[i] < eventual_submitted_) {
      violations.push_back(prefix + "replica r" + std::to_string(i) +
                           " eventual cursor " +
                           std::to_string(eventual_seen_[i]) + " lags prefix " +
                           std::to_string(eventual_submitted_) +
                           " at quiescence (eventual stream not drained)");
    }
  }
  return violations;
}

bool Shard::settled() const {
  // Eventual-stream convergence is leader-independent: even a leaderless
  // shard keeps streaming, so quiescence always waits for live reachable
  // cursors to land on the submitted prefix.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i].alive && !replicas_[i].partitioned &&
        eventual_seen_[i] < eventual_submitted_) {
      return false;
    }
  }
  if (!leader_serving()) return true;
  const Replica& leader = replicas_[static_cast<std::size_t>(leader_)];
  if (leader.partitioned) return true;
  std::size_t reachable = 0;
  for (const Replica& r : replicas_) {
    if (r.alive && !r.partitioned) ++reachable;
  }
  if (reachable < quorum_of(replicas_.size())) return true;
  if (leader.commit_index != leader.log_end() ||
      applied_to_nib_ != leader.commit_index) {
    return false;
  }
  for (const Replica& r : replicas_) {
    if (!r.alive || r.partitioned) continue;
    if (r.epoch != epoch_ || r.log_end() != leader.log_end() ||
        r.commit_index != leader.commit_index) {
      return false;
    }
  }
  return true;
}

std::uint64_t Shard::digest() const {
  std::uint64_t hash = kFnvOffset;
  hash = fnv1a(hash, id_);
  hash = fnv1a(hash, epoch_);
  hash = fnv1a(hash, static_cast<std::uint64_t>(leader_ + 1));
  hash = fnv1a(hash, stalled_ ? 1 : 0);
  hash = fnv1a(hash, applied_to_nib_);
  for (const LogEntry& entry : applied_log_) {
    hash = fnv1a(hash, entry.index);
    hash = fnv1a(hash, entry.epoch);
    hash = fnv1a(hash, entry.sw.value());
    hash = fnv1a(hash, entry.ops.size());
    for (const Op& op : entry.ops) hash = fnv1a(hash, op.id.value());
  }
  hash = fnv1a(hash, replicas_.size());
  for (const Replica& r : replicas_) {
    hash = fnv1a(hash, r.alive ? 1 : 0);
    hash = fnv1a(hash, r.partitioned ? 1 : 0);
    hash = fnv1a(hash, r.epoch);
    hash = fnv1a(hash, r.snapshot_index);
    hash = fnv1a(hash, r.log_end());
    hash = fnv1a(hash, r.commit_index);
    hash = fnv1a(hash, r.applied_index);
  }
  hash = fnv1a(hash, counters_.elections);
  hash = fnv1a(hash, counters_.snapshots_installed);
  // Folded only when the eventual stream was used: all-strong runs keep the
  // digest byte-identical to the pre-PR-10 formula (golden cells).
  if (eventual_submitted_ > 0) {
    hash = fnv1a(hash, eventual_submitted_);
    for (std::uint64_t seen : eventual_seen_) hash = fnv1a(hash, seen);
  }
  return hash;
}

// ---- ReplicatedControlPlane -------------------------------------------------

ReplicatedControlPlane::ReplicatedControlPlane(Simulator* sim,
                                               ReplConfig config)
    : sim_(sim), config_(std::move(config)) {
  for (std::size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(sim_, config_, i));
  }
}

std::size_t ReplicatedControlPlane::shard_of(SwitchId sw) const {
  std::uint64_t x =
      static_cast<std::uint64_t>(sw.value()) + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % std::max<std::size_t>(1, num_shards()));
}

void ReplicatedControlPlane::set_apply(
    std::function<void(std::size_t, const LogEntry&)> fn) {
  for (auto& shard : shards_) {
    shard->apply_ = [fn, id = shard->id()](const LogEntry& entry) {
      fn(id, entry);
    };
  }
}

void ReplicatedControlPlane::set_on_takeover(
    std::function<void(std::size_t, std::uint64_t, const char*)> fn) {
  for (auto& shard : shards_) {
    shard->on_takeover_ = [fn, id = shard->id()](std::uint64_t epoch,
                                                 const char* reason) {
      fn(id, epoch, reason);
    };
  }
}

void ReplicatedControlPlane::set_event_hook(
    std::function<void(const std::string&, const std::string&)> hook) {
  for (auto& shard : shards_) shard->event_hook_ = hook;
}

void ReplicatedControlPlane::start() {
  if (shards_.empty()) return;
  sim_->schedule(config_.heartbeat_period, [this] { tick_all(); });
}

void ReplicatedControlPlane::tick_all() {
  for (auto& shard : shards_) shard->tick();
  sim_->schedule(config_.heartbeat_period, [this] { tick_all(); });
}

bool ReplicatedControlPlane::submit_ack(SwitchId sw, std::vector<Op> ops) {
  Shard& shard = *shards_.at(shard_of(sw));
  bool had_leader = shard.leader_serving();
  shard.submit(sw, std::move(ops));
  return had_leader;
}

void ReplicatedControlPlane::note_eventual(SwitchId sw, std::size_t ops) {
  shards_.at(shard_of(sw))->note_eventual(ops);
}

void ReplicatedControlPlane::kill_shard_leader(std::size_t shard) {
  if (shard < shards_.size()) shards_[shard]->kill_leader();
}

void ReplicatedControlPlane::revive_shard(std::size_t shard) {
  if (shard < shards_.size()) shards_[shard]->revive_all();
}

void ReplicatedControlPlane::partition_shard_leader(std::size_t shard) {
  if (shard < shards_.size()) shards_[shard]->partition_leader();
}

void ReplicatedControlPlane::heal_shard(std::size_t shard) {
  if (shard < shards_.size()) shards_[shard]->heal_all();
}

void ReplicatedControlPlane::stall_heartbeats(std::size_t shard) {
  if (shard < shards_.size()) shards_[shard]->stalled_ = true;
}

void ReplicatedControlPlane::resume_heartbeats(std::size_t shard) {
  if (shard < shards_.size()) shards_[shard]->stalled_ = false;
}

std::vector<std::string> ReplicatedControlPlane::check_invariants(
    bool at_quiescence) const {
  std::vector<std::string> violations;
  for (const auto& shard : shards_) {
    for (std::string& v : shard->check_invariants(at_quiescence)) {
      violations.push_back(std::move(v));
    }
  }
  return violations;
}

bool ReplicatedControlPlane::settled() const {
  for (const auto& shard : shards_) {
    if (!shard->settled()) return false;
  }
  return true;
}

std::uint64_t ReplicatedControlPlane::digest() const {
  std::uint64_t hash = kFnvOffset;
  hash = fnv1a(hash, shards_.size());
  for (const auto& shard : shards_) hash = fnv1a(hash, shard->digest());
  return hash;
}

}  // namespace zenith::repl
