// Replicated control plane (ROADMAP item 1): a small deterministic
// replication log underneath the OFC's NIB commit path.
//
// Switches are statically partitioned into shards; each shard is served by a
// replica set (leader + standbys) that totally orders the shard's ACK
// transactions in a quorum-replicated log. The protocol is Raft-shaped but
// deliberately small — exactly the slice the availability argument needs:
//
//  * leader lease with epoch numbers: followers expect a heartbeat within
//    `lease_duration`; a silent leader (killed, partitioned, or wedged) loses
//    its lease and the most up-to-date reachable standby is elected at
//    epoch+1. The up-to-date vote rule (candidate log >= voter log) is what
//    guarantees the new leader holds every quorum-committed entry.
//  * log append/commit replication: the leader appends an entry per ACK
//    transaction, replicates it to followers over the simulator bus (fixed
//    per-hop delay — every schedule is seeded and replayable), and commits
//    once a majority holds it (cumulative match-index acknowledgements).
//    Only the acting leader applies committed entries to the real NIB, in
//    index order, behind a shard-level applied watermark that survives
//    takeovers (the NIB itself is the watermark's durable twin).
//  * snapshot install for lagging replicas: a revived replica whose log
//    trails the leader's committed prefix by more than
//    `snapshot_lag_threshold` receives a compacted snapshot (base index +
//    suffix) instead of an entry-by-entry catch-up.
//
// Failure injection (kill the leader, partition it from its peers, stall its
// heartbeats) is exposed as first-class methods so chaos schedules can drive
// unplanned failover; the §3.3-style replication invariants (R1-R4 below)
// are checked by the campaign oracle across every handoff.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "dag/op.h"
#include "sim/simulator.h"

namespace zenith::repl {

struct ReplConfig {
  /// 0 disables replication entirely (the single-instance pipeline is
  /// byte-identical to the pre-replication build; nothing is constructed,
  /// nothing is scheduled).
  std::size_t num_shards = 0;
  std::size_t replicas_per_shard = 3;
  /// Leader heartbeat / catch-up cadence (one shard tick per period).
  SimTime heartbeat_period = millis(10);
  /// A follower whose last heartbeat is older than this elects a new leader.
  SimTime lease_duration = millis(60);
  /// One-way replica-to-replica message delay on the simulator bus.
  SimTime replication_hop = millis(1);
  /// A follower trailing the leader's committed prefix by more than this
  /// many entries is caught up with a snapshot instead of an entry stream.
  std::size_t snapshot_lag_threshold = 8;
  /// Delay between winning an election and re-enqueueing the shard's SENT
  /// OPs (gives re-driven in-log commits a chance to land first; must
  /// comfortably exceed one replication round trip).
  SimTime takeover_requeue_delay = millis(4);
  /// Deliberate replication defect (chaos acceptance knob): the leader
  /// commits and applies an entry the moment it appends it, before any
  /// follower acknowledges. Killing or partitioning the leader then loses
  /// committed state — violating R2, which the oracle must catch.
  bool bug_commit_before_quorum = false;
};

/// One replicated log entry: the OPs of one ACK transaction against one
/// switch (the unit Nib::commit_ack_batch commits atomically).
struct LogEntry {
  std::uint64_t index = 0;  // 1-based, contiguous per shard
  std::uint64_t epoch = 0;  // epoch the entry was first appended under
  SwitchId sw;
  std::vector<Op> ops;
};

/// One replica's durable state. The log survives a kill (disk); only
/// leadership and lease bookkeeping are volatile.
struct Replica {
  bool alive = true;
  /// Isolated from its peers (replica-to-replica traffic drops both ways);
  /// the OFC-side submit path is colocated with the leader and unaffected.
  bool partitioned = false;
  std::uint64_t epoch = 0;
  /// Compacted prefix: the log holds entries (snapshot_index, log_end].
  std::uint64_t snapshot_index = 0;
  std::vector<LogEntry> log;
  std::uint64_t commit_index = 0;
  std::uint64_t applied_index = 0;  // follower-local durable apply watermark
  SimTime lease_expiry = 0;

  std::uint64_t log_end() const {
    return log.empty() ? snapshot_index : log.back().index;
  }
};

struct ShardCounters {
  std::uint64_t appends = 0;
  std::uint64_t commits = 0;            // entries applied to the NIB
  std::uint64_t elections = 0;
  std::uint64_t snapshots_installed = 0;
  std::uint64_t acks_dropped_no_leader = 0;
  std::uint64_t stale_messages = 0;     // old-epoch traffic rejected
  /// Eventual-class ops committed at the colocated OFC and streamed to the
  /// replica set outside the quorum log (PR 10; zero in all-strong mode).
  std::uint64_t eventual_submits = 0;
};

class ReplicatedControlPlane;

/// One shard's replica set. Owned by ReplicatedControlPlane; exposed const
/// for the abstraction layer and the invariant oracle.
class Shard {
 public:
  Shard(Simulator* sim, const ReplConfig& config, std::size_t id);

  std::size_t id() const { return id_; }
  std::uint64_t epoch() const { return epoch_; }
  int leader() const { return leader_; }
  bool heartbeats_stalled() const { return stalled_; }
  std::uint64_t applied_to_nib() const { return applied_to_nib_; }
  const std::vector<Replica>& replicas() const { return replicas_; }
  const std::vector<LogEntry>& applied_log() const { return applied_log_; }
  const ShardCounters& counters() const { return counters_; }
  const std::vector<std::pair<std::uint64_t, int>>& election_history() const {
    return election_history_;
  }

  /// Replication invariants, checked by the campaign oracle:
  ///  R1 — applied entries form the contiguous sequence 1..applied_to_nib
  ///       (no entry applied twice, none skipped);
  ///  R2 — every applied entry is held, content-identical, by a quorum of
  ///       replica logs (commit-before-quorum + leader loss breaks this);
  ///  R3 — election epochs are strictly increasing, one leader per epoch;
  ///  R4 — at quiescence every live un-partitioned replica has converged to
  ///       the leader's log/commit, and the leader's commit equals the
  ///       applied watermark (checked only when a live leader exists —
  ///       orphaned ddmin faults may leave a shard legally quorum-less).
  std::vector<std::string> check_invariants(bool at_quiescence) const;

  /// True when no further replication progress is pending: either the shard
  /// cannot serve (no live un-partitioned leader, or quorum unreachable — a
  /// state only the chaos injections create and their paired recoveries
  /// clear), or the reachable replica set has fully converged on the
  /// leader's log and everything committed reached the NIB. Quiescence
  /// probes (campaign oracle, lockstep phases) wait for this before
  /// evaluating R4, so heartbeat-paced follower lag never reads as a
  /// violation.
  bool settled() const;

  /// Folds this shard's abstract state (epoch, leadership, committed-log
  /// prefix, per-replica applied indexes) into an FNV-1a digest.
  std::uint64_t digest() const;

  // ---- eventual stream (PR 10; see nib/consistency.h) ----------------------
  //
  // Eventual-class commits bypass the quorum log entirely: they are durable
  // in the NIB's eventual apply log at the colocated OFC, and the replica
  // set learns of them through a leader-INDEPENDENT async stream — one
  // replication hop per update, plus a per-tick anti-entropy pass that
  // catches healed/revived replicas up. Each replica keeps a bounded-
  // staleness cursor (`eventual_seen`); the invariant oracle checks the
  // cursor is monotone, never ahead of the committed prefix, and fully
  // converged on every live un-partitioned replica at quiescence.

  /// Records `ops` eventual-class ops committed locally and streams the new
  /// prefix to the replicas. Works with or without a live leader — that is
  /// the availability win the knob buys.
  void note_eventual(std::size_t ops);
  /// The committed eventual prefix (op count) standbys chase.
  std::uint64_t eventual_submitted() const { return eventual_submitted_; }
  /// Replica `i`'s eventual cursor.
  std::uint64_t eventual_seen(std::size_t i) const {
    return eventual_seen_.at(i);
  }

 private:
  friend class ReplicatedControlPlane;

  struct CatchupPayload {
    bool snapshot = false;
    std::uint64_t snapshot_index = 0;  // snapshot install base
    std::uint64_t base = 0;            // entry stream: append after this
    std::vector<LogEntry> entries;
  };

  bool leader_serving() const;
  Replica& leader_replica() { return replicas_[static_cast<std::size_t>(leader_)]; }
  const LogEntry* entry_at(const Replica& r, std::uint64_t index) const;

  void submit(SwitchId sw, std::vector<Op> ops);
  void tick();
  void send_heartbeats();
  void send_catchups();
  void maybe_elect();
  void become_leader(std::size_t winner, const char* reason);
  void deliver_append(std::size_t from, std::size_t to, LogEntry entry,
                      std::uint64_t epoch);
  void deliver_catchup(std::size_t from, std::size_t to, CatchupPayload payload,
                       std::uint64_t epoch, std::uint64_t leader_commit);
  void deliver_heartbeat(std::size_t from, std::size_t to, std::uint64_t epoch,
                         std::uint64_t leader_commit);
  void deliver_ack(std::size_t from, std::uint64_t match, std::uint64_t epoch);
  void advance_commit();
  void apply_committed();
  bool link_up(std::size_t a, std::size_t b) const;

  // chaos injections (routed through ReplicatedControlPlane)
  void kill_leader();
  void revive_all();
  void partition_leader();
  void heal_all();

  Simulator* sim_;
  const ReplConfig& config_;
  std::size_t id_;
  std::vector<Replica> replicas_;
  int leader_ = 0;
  std::uint64_t epoch_ = 1;
  bool stalled_ = false;
  /// Confirmed replication progress per replica under the current epoch
  /// (Raft match-index); reset at every election and re-driven by catch-up.
  std::vector<std::uint64_t> match_;
  /// Shard-level NIB apply watermark: survives leader changes, preventing a
  /// new leader from re-applying entries its predecessor already committed.
  std::uint64_t applied_to_nib_ = 0;
  /// The NIB-side apply journal (what was actually committed, in order) —
  /// the ground truth R1/R2 compare replica logs against.
  std::vector<LogEntry> applied_log_;
  std::vector<std::pair<std::uint64_t, int>> election_history_;
  ShardCounters counters_;
  /// Eventual stream state (PR 10): committed prefix + per-replica cursors.
  std::uint64_t eventual_submitted_ = 0;
  std::vector<std::uint64_t> eventual_seen_;

  std::function<void(const LogEntry&)> apply_;
  std::function<void(std::uint64_t epoch, const char* reason)> on_takeover_;
  std::function<void(const std::string&, const std::string&)> event_hook_;
};

/// The replica sets for all shards plus the static switch partition. Owned
/// by ZenithController when CoreConfig::repl.num_shards > 0.
class ReplicatedControlPlane {
 public:
  ReplicatedControlPlane(Simulator* sim, ReplConfig config);

  ReplicatedControlPlane(const ReplicatedControlPlane&) = delete;
  ReplicatedControlPlane& operator=(const ReplicatedControlPlane&) = delete;

  const ReplConfig& config() const { return config_; }
  std::size_t num_shards() const { return shards_.size(); }
  Shard& shard(std::size_t i) { return *shards_.at(i); }
  const Shard& shard(std::size_t i) const { return *shards_.at(i); }

  /// Static partition of switches by id (stable 64-bit mix, same family as
  /// CoreContext::shard_of, independent modulus).
  std::size_t shard_of(SwitchId sw) const;

  /// NIB apply path: called (leader-side only) for each committed entry in
  /// log order. The controller filters stale ops (status != SENT) and runs
  /// the real Nib::commit_ack_batch transaction.
  void set_apply(std::function<void(std::size_t shard, const LogEntry&)> fn);
  /// Fired when a shard's leadership changes hands (election or a revived
  /// leader resuming): the controller re-enqueues the shard's SENT OPs,
  /// exactly-once, via the crash-mid-batch machinery.
  void set_on_takeover(
      std::function<void(std::size_t shard, std::uint64_t epoch,
                         const char* reason)>
          fn);
  /// Optional observability tap (event track "repl").
  void set_event_hook(
      std::function<void(const std::string&, const std::string&)> hook);

  /// Schedules the periodic shard ticks. Call once, before the run.
  void start();

  /// Routes one ACK transaction into the owning shard's log. Returns false
  /// (and drops the ACK — the takeover requeue repairs the OPs) when the
  /// shard has no live leader.
  bool submit_ack(SwitchId sw, std::vector<Op> ops);

  /// Eventual-class commit notification (PR 10): `ops` install ops for
  /// `sw`'s shard committed to the local eventual log, bypassing the quorum
  /// log. Never drops — no leader required.
  void note_eventual(SwitchId sw, std::size_t ops);

  // ---- chaos injections ------------------------------------------------------
  void kill_shard_leader(std::size_t shard);
  void revive_shard(std::size_t shard);
  void partition_shard_leader(std::size_t shard);
  void heal_shard(std::size_t shard);
  void stall_heartbeats(std::size_t shard);
  void resume_heartbeats(std::size_t shard);

  // ---- oracle ----------------------------------------------------------------
  /// Union of every shard's R1-R4 violations, messages prefixed "shard k:".
  std::vector<std::string> check_invariants(bool at_quiescence) const;
  /// Every shard settled (see Shard::settled).
  bool settled() const;
  /// Combined abstract-replica-set digest over all shards.
  std::uint64_t digest() const;

 private:
  void tick_all();

  Simulator* sim_;
  ReplConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace zenith::repl
