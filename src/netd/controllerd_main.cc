// zenith_controllerd: the ZENITH controller as a standalone daemon.
//
// Connects to zenith_switchd over loopback TCP or a Unix socket, handshakes,
// then runs the full verified pipeline (DAG scheduler -> Sequencer -> Worker
// Pool -> Monitoring Server, watchdog included) against the remote data
// plane through the SocketTransport. The component service model still runs
// on a deterministic Simulator that the main loop pumps in slices between
// epoll polls; observability, by contrast, timestamps from a monotonic wall
// clock because there is no global logical time across two processes.
//
// Exit codes: 0 success (scenario converged; with --self-check also
// fingerprint-equal to the sim backend), 0 on clean SIGTERM, 1 on failure.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/controller.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "net/socket_transport.h"
#include "netd/wire_scenario.h"
#include "obs/clock.h"
#include "obs/obs.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_stop(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect <tcp:PORT|uds:/path> [--seed N]\n"
               "          [--switches N] [--flows N] [--target-ops N]\n"
               "          [--churn N] [--drains N] [--slice-us N] "
               "[--self-check] "
               "[--json]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zenith;

  std::string connect_spec;
  netd::WireScenarioConfig scenario;
  long slice_us = 1000;
  bool self_check = false;
  bool json = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--connect") {
      connect_spec = next();
    } else if (arg == "--seed") {
      scenario.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--switches") {
      scenario.switches = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--flows") {
      scenario.flows = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--target-ops") {
      scenario.target_ops = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--churn") {
      scenario.churn_updates = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--drains") {
      scenario.drain_rounds = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--slice-us") {
      slice_us = std::strtol(next(), nullptr, 10);
    } else if (arg == "--self-check") {
      self_check = true;
    } else if (arg == "--json") {
      json = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (connect_spec.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::signal(SIGTERM, handle_stop);
  std::signal(SIGINT, handle_stop);
  std::signal(SIGPIPE, SIG_IGN);

  auto endpoint = net::parse_endpoint(connect_spec);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "controllerd: %s\n",
                 endpoint.error().message.c_str());
    return 1;
  }

  net::EventLoop loop;
  auto fd = net::connect_with_retry(endpoint.value(), /*timeout_ms=*/10000);
  if (!fd.ok()) {
    std::fprintf(stderr, "controllerd: %s\n", fd.error().message.c_str());
    return 1;
  }

  net::SocketTransport transport(&loop, fd.value());
  if (auto st = transport.handshake(scenario.seed, /*timeout_ms=*/10000);
      !st.ok()) {
    std::fprintf(stderr, "controllerd: handshake: %s\n",
                 st.error().message.c_str());
    return 1;
  }
  const Topology topo = netd::wire_topology(scenario);
  if (transport.switch_count() != topo.switch_count()) {
    std::fprintf(stderr,
                 "controllerd: topology mismatch: peer has %zu switches, "
                 "scenario expects %zu (check --seed/--switches agree)\n",
                 transport.switch_count(), topo.switch_count());
    return 1;
  }

  // Wall-clock observability: spans and metrics carry monotonic microsecond
  // timestamps instead of simulated time.
  obs::Observability observability;
  observability.set_clock(obs::wall_clock());

  Simulator sim;
  ZenithController controller(&sim, &transport);
  controller.set_observability(&observability);
  controller.start();

  const SimTime started_wall = observability.now();
  auto pump = [&] {
    auto polled = loop.poll(1);
    (void)polled;
    sim.run_until(sim.now() + micros(slice_us));
  };
  auto aborted = [&] {
    return g_stop != 0 || !transport.peer_connected();
  };

  netd::WireScenarioReport report =
      netd::run_wire_scenario(scenario, controller, pump, aborted);
  const SimTime elapsed_wall = observability.now() - started_wall;
  observability.event("wire", "scenario_done");

  bool fingerprint_match = true;
  std::uint64_t sim_fingerprint = 0;
  if (self_check && report.converged) {
    netd::WireScenarioReport reference = netd::run_wire_scenario_sim(scenario);
    sim_fingerprint = reference.fingerprint;
    fingerprint_match = reference.converged &&
                        reference.fingerprint == report.fingerprint;
  }

  transport.send_bye_and_flush(/*timeout_ms=*/2000);
  // Give the peer a beat to answer with its own Bye (not required for
  // success — the kernel delivers our flushed Bye regardless).
  for (int i = 0; i < 50 && !transport.peer_said_bye(); ++i) {
    auto polled = loop.poll(10);
    if (!polled.ok() || !transport.peer_connected()) break;
  }

  const net::ConnectionStats& stats = transport.stats();
  double seconds_elapsed =
      static_cast<double>(elapsed_wall > 0 ? elapsed_wall : 1) / 1e6;
  double ops_per_sec = static_cast<double>(report.ops) / seconds_elapsed;

  if (json) {
    std::printf(
        "{\"converged\": %s, \"dags\": %llu, \"ops\": %llu, "
        "\"drains\": %llu, \"fingerprint\": \"%016llx\", "
        "\"self_check\": %s, \"fingerprint_match\": %s, "
        "\"sim_fingerprint\": \"%016llx\", \"wall_us\": %lld, "
        "\"ops_per_sec\": %.0f, \"frames_sent\": %llu, "
        "\"frames_received\": %llu, \"bytes_sent\": %llu, "
        "\"bytes_received\": %llu, \"stalls\": %llu, \"error\": \"%s\"}\n",
        report.converged ? "true" : "false",
        static_cast<unsigned long long>(report.dags),
        static_cast<unsigned long long>(report.ops),
        static_cast<unsigned long long>(report.drains),
        static_cast<unsigned long long>(report.fingerprint),
        self_check ? "true" : "false", fingerprint_match ? "true" : "false",
        static_cast<unsigned long long>(sim_fingerprint),
        static_cast<long long>(elapsed_wall), ops_per_sec,
        static_cast<unsigned long long>(stats.frames_sent),
        static_cast<unsigned long long>(stats.frames_received),
        static_cast<unsigned long long>(stats.bytes_sent),
        static_cast<unsigned long long>(stats.bytes_received),
        static_cast<unsigned long long>(stats.stall_events),
        report.error.c_str());
  } else {
    std::string error_suffix =
        report.error.empty() ? "" : " error=" + report.error;
    std::printf(
        "controllerd: converged=%d dags=%llu ops=%llu drains=%llu "
        "fingerprint=%016llx wall=%.2fs (%.0f ops/s) frames=%llu/%llu%s%s\n",
        report.converged ? 1 : 0,
        static_cast<unsigned long long>(report.dags),
        static_cast<unsigned long long>(report.ops),
        static_cast<unsigned long long>(report.drains),
        static_cast<unsigned long long>(report.fingerprint), seconds_elapsed,
        ops_per_sec, static_cast<unsigned long long>(stats.frames_sent),
        static_cast<unsigned long long>(stats.frames_received),
        self_check ? (fingerprint_match ? " self-check=match"
                                        : " self-check=MISMATCH")
                   : "",
        error_suffix.c_str());
  }

  if (g_stop != 0 && !report.converged) return 0;  // clean SIGTERM shutdown
  if (!report.converged) return 1;
  if (self_check && !fingerprint_match) return 1;
  return 0;
}
