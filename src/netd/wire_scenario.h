// The deterministic workload both wire-daemon backends execute.
//
// zenith_controllerd runs this scenario over a SocketTransport against a
// remote zenith_switchd; the conformance check runs the identical scenario
// on the in-process sim bus. It is failure-free by construction, and every
// DAG is submitted at a quiescence point (the previous DAG certified done),
// so the final NIB state — and therefore Nib::state_fingerprint() — is
// independent of message timing. Equal fingerprints across backends is the
// PR's acceptance gate: the wire stack moved ~10^5 OPs through a real
// kernel socket and the controller ended in exactly the state the verified
// sim-backend pipeline reaches.
//
// Phases:
//   1. initial DAG installing `flows` shortest-path flows;
//   2. churn: next_update_dag() repeated until >= `target_ops` OPs total;
//   3. drain/undrain: `drain_rounds` hitless drains (compute_drain_dag,
//      the §4 app) of a rotating node, each followed by its undrain.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/controller.h"
#include "topo/topology.h"

namespace zenith::netd {

struct WireScenarioConfig {
  std::uint64_t seed = 42;
  /// 0 = the paper's B4 WAN; otherwise random_connected(switches, ...).
  std::size_t switches = 0;
  std::size_t flows = 24;
  /// Small single-flow update DAGs in the churn phase (tiny frames).
  std::size_t churn_updates = 50;
  /// Minimum total OPs across the whole scenario: drain/undrain rounds —
  /// each a full path-set reinstall, so ~2 x flows x hops OPs per DAG —
  /// repeat past `drain_rounds` until the floor is met. This is how the
  /// 100k-OP soak is expressed without 10^4 tiny round trips.
  std::size_t target_ops = 2000;
  std::size_t drain_rounds = 2;
};

struct WireScenarioReport {
  bool converged = false;      // every DAG certified done
  std::uint64_t dags = 0;      // DAGs submitted
  std::uint64_t ops = 0;       // OPs across those DAGs
  std::uint64_t drains = 0;    // accepted drain/undrain DAGs
  std::uint64_t fingerprint = 0;  // Nib::state_fingerprint() at the end
  std::string error;           // non-empty on abort
};

/// The scenario's topology for a given config (both processes must agree).
Topology wire_topology(const WireScenarioConfig& config);

/// Drives `controller` through the scenario. `pump` advances the world one
/// slice (sim time and, in socket mode, the epoll loop); it is called
/// repeatedly while waiting for DAG certification. `aborted` (may be null)
/// lets the caller stop early — SIGTERM, peer loss — in which case the
/// report carries converged=false and an error.
WireScenarioReport run_wire_scenario(const WireScenarioConfig& config,
                                     ZenithController& controller,
                                     const std::function<void()>& pump,
                                     const std::function<bool()>& aborted);

/// Runs the identical scenario on an in-process sim-bus deployment and
/// returns its report (the reference fingerprint).
WireScenarioReport run_wire_scenario_sim(const WireScenarioConfig& config);

}  // namespace zenith::netd
