#include "netd/wire_scenario.h"

#include <utility>

#include "apps/drain_app.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "topo/generators.h"

namespace zenith::netd {

namespace {

/// One pump-wait bound: generous enough for any DAG in the scenario (sim
/// mode advances ~1ms of simulated time per pump; socket mode sleeps ~1ms
/// of wall time per pump), tight enough that a wedged run fails instead of
/// hanging CI.
constexpr std::size_t kMaxWaitPumps = 600000;

}  // namespace

Topology wire_topology(const WireScenarioConfig& config) {
  if (config.switches == 0) return gen::b4();
  return gen::random_connected(config.switches, config.switches / 2,
                               config.seed);
}

WireScenarioReport run_wire_scenario(const WireScenarioConfig& config,
                                     ZenithController& controller,
                                     const std::function<void()>& pump,
                                     const std::function<bool()>& aborted) {
  Topology topo = wire_topology(config);
  Workload workload(&topo, &controller.op_ids(), config.seed);
  WireScenarioReport report;

  auto wait_done = [&](DagId id) {
    for (std::size_t i = 0; i < kMaxWaitPumps; ++i) {
      if (controller.nib().dag_is_done(id)) return true;
      if (aborted && aborted()) {
        report.error = "aborted while waiting for dag " +
                       std::to_string(id.value());
        return false;
      }
      pump();
    }
    report.error = "dag " + std::to_string(id.value()) +
                   " never certified done";
    return false;
  };

  auto submit = [&](Dag dag) {
    DagId id = dag.id();
    report.ops += dag.op_ids().size();
    ++report.dags;
    controller.submit_dag(std::move(dag));
    return wait_done(id);
  };

  // Phase 1: the base path set.
  if (!submit(workload.initial_dag(config.flows))) return report;

  // Phase 2: single-flow update churn — many small frames. Every update is
  // a quiescent full round trip, so OP/frame counts are exact in both modes.
  for (std::size_t i = 0; i < config.churn_updates; ++i) {
    auto dag = workload.next_update_dag();
    if (!dag.has_value()) break;
    if (!submit(std::move(*dag))) return report;
  }

  // Phase 3: hitless drain/undrain rounds (§4 app) over rotating targets.
  // Each accepted drain is a full path-set reinstall (big DAG, big frames).
  // The app state (paths/flows/ops) threads through each accepted result
  // exactly as DrainApp::try_step does. A refused drain (endpoint node,
  // disconnection) refuses identically in both backends — the inputs are
  // bit-equal — so the DAG sequence stays aligned.
  std::vector<Path> paths = workload.paths();
  std::vector<FlowId> flows = workload.flow_ids();
  std::vector<Op> ops = workload.all_flow_ops();
  std::uint32_t next_drain_dag = 1000000;
  for (std::size_t round = 0; round < config.drain_rounds; ++round) {
    auto node = SwitchId(static_cast<std::uint32_t>(
        (config.seed + round) % topo.switch_count()));
    apps::DrainRequest drain{topo, paths, flows, ops, node,
                             /*undrain=*/false};
    auto result = apps::compute_drain_dag(drain, DagId(next_drain_dag),
                                          controller.op_ids());
    if (!result.ok()) continue;
    ++next_drain_dag;
    paths = result.value().new_paths;
    flows = result.value().flows;
    ops = result.value().new_ops;
    if (!submit(std::move(result.value().dag))) return report;
    ++report.drains;

    apps::DrainRequest undrain{topo, paths, flows, ops, node,
                               /*undrain=*/true};
    auto back = apps::compute_drain_dag(undrain, DagId(next_drain_dag),
                                        controller.op_ids());
    if (!back.ok()) continue;
    ++next_drain_dag;
    paths = back.value().new_paths;
    flows = back.value().flows;
    ops = back.value().new_ops;
    if (!submit(std::move(back.value().dag))) return report;
    ++report.drains;
  }

  // Phase 4: volume. Fresh flow waves (new FlowIds, install-only DAGs of
  // ~flows x hops OPs) until the scenario-wide OP floor is met — the
  // 100k-OP soak spends nearly all its budget here, in big frames, instead
  // of burning a wire round trip per handful of OPs.
  while (report.ops < config.target_ops) {
    if (!submit(workload.initial_dag(config.flows))) return report;
  }

  report.converged = true;
  report.fingerprint = controller.nib().state_fingerprint();
  return report;
}

WireScenarioReport run_wire_scenario_sim(const WireScenarioConfig& config) {
  ExperimentConfig exp_config;
  exp_config.seed = config.seed;
  exp_config.kind = ControllerKind::kZenithNR;
  Experiment experiment(wire_topology(config), exp_config);
  experiment.start();
  return run_wire_scenario(
      config, experiment.controller(),
      [&experiment] { experiment.run_for(millis(1)); }, nullptr);
}

}  // namespace zenith::netd
