// zenith_switchd: the data plane as a standalone daemon.
//
// Listens on loopback TCP or a Unix socket, serves one controller session
// through a SwitchBridge (local deterministic Simulator + Fabric behind the
// binary wire codec), and exits 0 after the controller says Bye — or on
// SIGTERM with --linger. The topology derives from --seed/--switches using
// the same rule as the controller; the Hello exchange lets the peer verify
// both processes agree.
#include <sys/epoll.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/event_loop.h"
#include "net/socket.h"
#include "net/switch_bridge.h"
#include "netd/wire_scenario.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void handle_stop(int) { g_stop = 1; }

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --listen <tcp:PORT|uds:/path> [--seed N]\n"
               "          [--switches N] [--linger]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zenith;

  std::string listen_spec;
  netd::WireScenarioConfig scenario;
  bool linger = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--listen") {
      listen_spec = next();
    } else if (arg == "--seed") {
      scenario.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--switches") {
      scenario.switches = std::strtoul(next(), nullptr, 10);
    } else if (arg == "--linger") {
      linger = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (listen_spec.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::signal(SIGTERM, handle_stop);
  std::signal(SIGINT, handle_stop);
  std::signal(SIGPIPE, SIG_IGN);

  auto endpoint = net::parse_endpoint(listen_spec);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "switchd: %s\n", endpoint.error().message.c_str());
    return 1;
  }

  net::EventLoop loop;
  std::uint16_t bound_port = 0;
  auto listen_fd = net::listen_on(endpoint.value(), &bound_port);
  if (!listen_fd.ok()) {
    std::fprintf(stderr, "switchd: %s\n", listen_fd.error().message.c_str());
    return 1;
  }
  if (endpoint.value().kind == net::Endpoint::Kind::kTcp) {
    std::printf("switchd: listening on tcp:%u\n", bound_port);
  } else {
    std::printf("switchd: listening on uds:%s\n",
                endpoint.value().path.c_str());
  }
  std::fflush(stdout);

  bool served_any = false;
  while (g_stop == 0) {
    net::SwitchBridge bridge(netd::wire_topology(scenario), scenario.seed);

    // Wait for a controller.
    int conn_fd = -1;
    while (g_stop == 0 && conn_fd < 0) {
      auto accepted = net::accept_on(listen_fd.value());
      if (!accepted.ok()) {
        std::fprintf(stderr, "switchd: %s\n",
                     accepted.error().message.c_str());
        return 1;
      }
      conn_fd = accepted.value();
      if (conn_fd < 0) {
        // Nothing pending: sleep in epoll on the listen socket.
        loop.add(listen_fd.value(), EPOLLIN, [](std::uint32_t) {});
        auto polled = loop.poll(100);
        loop.remove(listen_fd.value());
        if (!polled.ok()) return 1;
      }
    }
    if (conn_fd < 0) break;  // SIGTERM while waiting

    bridge.attach(&loop, conn_fd);
    served_any = true;

    // Serve: epoll for inbound frames, run the local fabric simulator to
    // idle, ship out whatever surfaced. Repeat until Bye or disconnect.
    while (g_stop == 0 && bridge.peer_connected() && !bridge.peer_said_bye()) {
      auto polled = loop.poll(10);
      if (!polled.ok()) break;
      bridge.pump();
    }
    // Late deliveries (channel delays still in the local sim) after Bye.
    bridge.pump();
    bridge.send_bye_and_flush(/*timeout_ms=*/2000);

    const net::ConnectionStats* stats = bridge.stats();
    std::printf(
        "switchd: session done requests=%llu frames=%llu/%llu reason=%s\n",
        static_cast<unsigned long long>(bridge.requests_received()),
        static_cast<unsigned long long>(stats ? stats->frames_sent : 0),
        static_cast<unsigned long long>(stats ? stats->frames_received : 0),
        bridge.peer_said_bye() ? "bye" : bridge.close_reason().c_str());
    std::fflush(stdout);

    if (!linger) break;
  }

  if (endpoint.value().kind == net::Endpoint::Kind::kUds) {
    ::unlink(endpoint.value().path.c_str());
  }
  // SIGTERM is a clean shutdown; never having served a session only counts
  // as success when we were asked to linger or stopped before a connect.
  (void)served_any;
  return 0;
}
